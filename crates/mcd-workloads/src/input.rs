//! Input sets and simulation windows.
//!
//! MediaBench ships a small and a large input for each program; SPEC provides
//! train and ref sets. The paper profiles on the small/training input and
//! evaluates on the larger reference input, simulating the instruction windows
//! of Table 2. Our windows are scaled down (the paper's 200 M-instruction
//! windows are pure simulation-time budget) but keep the same training-versus-
//! reference relationship.

use crate::program::InputKind;

/// A concrete input set for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSet {
    /// Whether this is the training or the reference input.
    pub kind: InputKind,
    /// Maximum number of dynamic instructions to generate (the simulation
    /// window). `u64::MAX` means "the entire program".
    pub max_instructions: u64,
    /// Whether the window covers the entire program execution (for Table 2's
    /// "entire program" rows) or is a truncated window.
    pub entire_program: bool,
    /// Seed used for this input's data-dependent behaviour (addresses, branch
    /// outcomes, dependence draws). Training and reference inputs use different
    /// seeds so that data-dependent paths differ between them.
    pub seed: u64,
}

impl InputSet {
    /// Creates a training input covering at most `max_instructions`.
    pub fn training(max_instructions: u64) -> Self {
        InputSet {
            kind: InputKind::Training,
            max_instructions,
            entire_program: false,
            seed: 0x7261_696e, // "rain" — training seed
        }
    }

    /// Creates a reference input covering at most `max_instructions`.
    pub fn reference(max_instructions: u64) -> Self {
        InputSet {
            kind: InputKind::Reference,
            max_instructions,
            entire_program: false,
            seed: 0x7265_6665, // "refe" — reference seed
        }
    }

    /// Marks the window as covering the entire program (Table 2 reporting).
    pub fn entire(mut self) -> Self {
        self.entire_program = true;
        self
    }

    /// Returns a copy with a different seed (used for sensitivity studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Human-readable description of the window, in the style of Table 2.
    pub fn window_description(&self) -> String {
        let millions = self.max_instructions as f64 / 1.0e6;
        if self.entire_program {
            format!("entire program ({millions:.1}M)")
        } else {
            format!("0 – {millions:.1}M")
        }
    }
}

/// The pair of input sets (training, reference) a benchmark is evaluated with.
#[derive(Debug, Clone, PartialEq)]
pub struct InputPair {
    /// The training input (used only for profiling).
    pub training: InputSet,
    /// The reference input (used for all reported results).
    pub reference: InputSet,
}

impl InputPair {
    /// Creates a pair from training/reference window lengths (in instructions),
    /// marking both as entire-program windows when `entire` is true.
    pub fn new(training_window: u64, reference_window: u64, entire: bool) -> Self {
        let mut training = InputSet::training(training_window);
        let mut reference = InputSet::reference(reference_window);
        if entire {
            training = training.entire();
            reference = reference.entire();
        }
        InputPair {
            training,
            reference,
        }
    }

    /// The input set of the given kind.
    pub fn get(&self, kind: InputKind) -> &InputSet {
        match kind {
            InputKind::Training => &self.training,
            InputKind::Reference => &self.reference,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_and_reference_have_distinct_seeds() {
        let pair = InputPair::new(50_000, 200_000, false);
        assert_ne!(pair.training.seed, pair.reference.seed);
        assert_eq!(pair.training.kind, InputKind::Training);
        assert_eq!(pair.reference.kind, InputKind::Reference);
        assert!(pair.reference.max_instructions > pair.training.max_instructions);
    }

    #[test]
    fn window_description_styles() {
        let entire = InputSet::training(7_100_000).entire();
        assert!(entire.window_description().contains("entire program"));
        let window = InputSet::reference(200_000_000);
        assert!(window.window_description().starts_with("0 – "));
    }

    #[test]
    fn get_by_kind() {
        let pair = InputPair::new(10, 20, true);
        assert_eq!(pair.get(InputKind::Training).max_instructions, 10);
        assert_eq!(pair.get(InputKind::Reference).max_instructions, 20);
        assert!(pair.training.entire_program);
    }

    #[test]
    fn with_seed_overrides() {
        let s = InputSet::training(100).with_seed(99);
        assert_eq!(s.seed, 99);
    }
}
