//! The benchmark registry: the nineteen MediaBench and SPEC CPU2000 programs
//! the paper evaluates (the *batch* tier), plus the second-tier server and
//! interactive workloads, with their training and reference inputs.
//!
//! Benchmarks are organized in tiers by [`SuiteKind`]. [`suite`] keeps
//! returning exactly the paper's nineteen batch programs (every figure
//! binary's default); [`server_suite`] returns the second tier, and
//! [`full_suite`] both. All tiers share one namespace: assembly goes through
//! a checked [`Registry`] that rejects duplicate names across tiers, and
//! [`benchmark`] looks names up across every tier.

use crate::input::InputPair;
use crate::program::Program;
use crate::programs;

/// Which suite a benchmark comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// MediaBench multimedia kernels.
    MediaBench,
    /// SPEC CPU2000 integer benchmarks.
    SpecInt,
    /// SPEC CPU2000 floating-point benchmarks.
    SpecFp,
    /// Second tier: server-style request-loop programs.
    Server,
    /// Second tier: bursty/interactive duty-cycle programs.
    Interactive,
}

impl SuiteKind {
    /// Every tier, in registry order.
    pub const ALL: [SuiteKind; 5] = [
        SuiteKind::MediaBench,
        SuiteKind::SpecInt,
        SuiteKind::SpecFp,
        SuiteKind::Server,
        SuiteKind::Interactive,
    ];

    /// Whether this tier is part of the paper's original nineteen-benchmark
    /// batch evaluation.
    pub fn is_batch(self) -> bool {
        matches!(
            self,
            SuiteKind::MediaBench | SuiteKind::SpecInt | SuiteKind::SpecFp
        )
    }
}

impl std::fmt::Display for SuiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteKind::MediaBench => f.write_str("MediaBench"),
            SuiteKind::SpecInt => f.write_str("SPEC CINT2000"),
            SuiteKind::SpecFp => f.write_str("SPEC CFP2000"),
            SuiteKind::Server => f.write_str("Server"),
            SuiteKind::Interactive => f.write_str("Interactive"),
        }
    }
}

/// Errors raised while assembling a benchmark registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteError {
    /// Two benchmarks (possibly in different tiers) share a name. Names are
    /// compared case-insensitively because [`benchmark`] looks them up that
    /// way.
    DuplicateName(String),
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::DuplicateName(name) => {
                write!(
                    f,
                    "benchmark `{name}` is registered more than once (benchmark names \
                     must be unique across all suite tiers)"
                )
            }
        }
    }
}

impl std::error::Error for SuiteError {}

/// One benchmark: its program model and input pair.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name as the paper spells it (e.g. `"adpcm decode"`).
    pub name: &'static str,
    /// The suite the benchmark belongs to.
    pub suite: SuiteKind,
    /// The structural program model.
    pub program: Program,
    /// Training and reference inputs.
    pub inputs: InputPair,
}

impl Benchmark {
    fn new(name: &'static str, suite: SuiteKind, (program, inputs): (Program, InputPair)) -> Self {
        Benchmark {
            name,
            suite,
            program,
            inputs,
        }
    }
}

/// A checked collection of benchmarks: registration fails on duplicate names
/// instead of silently shadowing an existing entry, so a lookup by name can
/// never be ambiguous across tiers.
#[derive(Debug, Default)]
pub struct Registry {
    benchmarks: Vec<Benchmark>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers one benchmark, rejecting names (case-insensitively) already
    /// present in any tier.
    pub fn register(&mut self, benchmark: Benchmark) -> Result<(), SuiteError> {
        let lower = benchmark.name.to_lowercase();
        if self
            .benchmarks
            .iter()
            .any(|b| b.name.to_lowercase() == lower)
        {
            return Err(SuiteError::DuplicateName(benchmark.name.to_string()));
        }
        self.benchmarks.push(benchmark);
        Ok(())
    }

    /// Registers a batch of benchmarks; the first duplicate aborts.
    pub fn register_all(
        &mut self,
        benchmarks: impl IntoIterator<Item = Benchmark>,
    ) -> Result<(), SuiteError> {
        for b in benchmarks {
            self.register(b)?;
        }
        Ok(())
    }

    /// The registered benchmarks, in registration order.
    pub fn into_benchmarks(self) -> Vec<Benchmark> {
        self.benchmarks
    }
}

/// The paper's nineteen batch benchmarks, in the order its tables list them.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "adpcm decode",
            SuiteKind::MediaBench,
            programs::adpcm::decode(),
        ),
        Benchmark::new(
            "adpcm encode",
            SuiteKind::MediaBench,
            programs::adpcm::encode(),
        ),
        Benchmark::new(
            "epic decode",
            SuiteKind::MediaBench,
            programs::epic::decode(),
        ),
        Benchmark::new(
            "epic encode",
            SuiteKind::MediaBench,
            programs::epic::encode(),
        ),
        Benchmark::new(
            "g721 decode",
            SuiteKind::MediaBench,
            programs::g721::decode(),
        ),
        Benchmark::new(
            "g721 encode",
            SuiteKind::MediaBench,
            programs::g721::encode(),
        ),
        Benchmark::new("gsm decode", SuiteKind::MediaBench, programs::gsm::decode()),
        Benchmark::new("gsm encode", SuiteKind::MediaBench, programs::gsm::encode()),
        Benchmark::new(
            "jpeg compress",
            SuiteKind::MediaBench,
            programs::jpeg::compress(),
        ),
        Benchmark::new(
            "jpeg decompress",
            SuiteKind::MediaBench,
            programs::jpeg::decompress(),
        ),
        Benchmark::new(
            "mpeg2 decode",
            SuiteKind::MediaBench,
            programs::mpeg2::decode(),
        ),
        Benchmark::new(
            "mpeg2 encode",
            SuiteKind::MediaBench,
            programs::mpeg2::encode(),
        ),
        Benchmark::new("gzip", SuiteKind::SpecInt, programs::gzip::gzip()),
        Benchmark::new("vpr", SuiteKind::SpecInt, programs::vpr::vpr()),
        Benchmark::new("mcf", SuiteKind::SpecInt, programs::mcf::mcf()),
        Benchmark::new("swim", SuiteKind::SpecFp, programs::swim::swim()),
        Benchmark::new("applu", SuiteKind::SpecFp, programs::applu::applu()),
        Benchmark::new("art", SuiteKind::SpecFp, programs::art::art()),
        Benchmark::new("equake", SuiteKind::SpecFp, programs::equake::equake()),
    ]
}

/// The second workload tier: three server-style and three bursty/interactive
/// benchmarks beyond the paper's nineteen.
pub fn server_suite() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "web serve",
            SuiteKind::Server,
            programs::server::web_serve(),
        ),
        Benchmark::new("kv store", SuiteKind::Server, programs::server::kv_store()),
        Benchmark::new(
            "media relay",
            SuiteKind::Server,
            programs::server::media_relay(),
        ),
        Benchmark::new(
            "photo edit",
            SuiteKind::Interactive,
            programs::interactive::photo_edit(),
        ),
        Benchmark::new(
            "sensor hub",
            SuiteKind::Interactive,
            programs::interactive::sensor_hub(),
        ),
        Benchmark::new(
            "speech wake",
            SuiteKind::Interactive,
            programs::interactive::speech_wake(),
        ),
    ]
}

/// Every benchmark of every tier, assembled through the duplicate-checked
/// [`Registry`].
pub fn try_full_suite() -> Result<Vec<Benchmark>, SuiteError> {
    let mut registry = Registry::new();
    registry.register_all(suite())?;
    registry.register_all(server_suite())?;
    Ok(registry.into_benchmarks())
}

/// Every benchmark of every tier: the paper's nineteen followed by the
/// second tier.
///
/// # Panics
///
/// Panics if the static benchmark definitions register a duplicate name —
/// a programming error that the suite's unit tests catch.
pub fn full_suite() -> Vec<Benchmark> {
    try_full_suite().expect("static benchmark registry has no duplicate names")
}

/// The benchmarks of one tier, in registry order.
pub fn tier(kind: SuiteKind) -> Vec<Benchmark> {
    full_suite()
        .into_iter()
        .filter(|b| b.suite == kind)
        .collect()
}

/// Looks up a single benchmark by name (case-insensitive), across all tiers.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    let lower = name.to_lowercase();
    full_suite()
        .into_iter()
        .find(|b| b.name.to_lowercase() == lower)
}

/// The names of all benchmarks across all tiers, in registry order (the
/// paper's table order first, then the second tier).
pub fn benchmark_names() -> Vec<&'static str> {
    full_suite().into_iter().map(|b| b.name).collect()
}

/// The benchmark names of one tier, in registry order.
pub fn benchmark_names_for(kind: SuiteKind) -> Vec<&'static str> {
    tier(kind).into_iter().map(|b| b.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nineteen_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 19);
        let media = s
            .iter()
            .filter(|b| b.suite == SuiteKind::MediaBench)
            .count();
        let spec_int = s.iter().filter(|b| b.suite == SuiteKind::SpecInt).count();
        let spec_fp = s.iter().filter(|b| b.suite == SuiteKind::SpecFp).count();
        assert_eq!(media, 12);
        assert_eq!(spec_int, 3);
        assert_eq!(spec_fp, 4);
        assert!(s.iter().all(|b| b.suite.is_batch()));
    }

    #[test]
    fn second_tier_has_six_benchmarks() {
        let s = server_suite();
        assert_eq!(s.len(), 6);
        assert_eq!(s.iter().filter(|b| b.suite == SuiteKind::Server).count(), 3);
        assert_eq!(
            s.iter()
                .filter(|b| b.suite == SuiteKind::Interactive)
                .count(),
            3
        );
        assert!(s.iter().all(|b| !b.suite.is_batch()));
        assert_eq!(full_suite().len(), 25);
    }

    #[test]
    fn names_are_unique_across_tiers() {
        let mut names = benchmark_names();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(try_full_suite().is_ok());
    }

    #[test]
    fn registry_rejects_duplicates_across_tiers() {
        let mut registry = Registry::new();
        registry.register_all(suite()).expect("paper tier is clean");
        let mut clash = server_suite().remove(0);
        clash.name = "MCF"; // case-insensitively collides with the SPEC tier
        assert_eq!(
            registry.register(clash),
            Err(SuiteError::DuplicateName("MCF".to_string()))
        );
        // The failed registration did not corrupt the registry.
        assert_eq!(registry.into_benchmarks().len(), 19);
    }

    #[test]
    fn lookup_by_name_is_tier_aware() {
        assert!(benchmark("mcf").is_some());
        assert!(benchmark("MCF").is_some());
        assert!(benchmark("jpeg compress").is_some());
        assert_eq!(
            benchmark("web serve").map(|b| b.suite),
            Some(SuiteKind::Server)
        );
        assert_eq!(
            benchmark("Sensor Hub").map(|b| b.suite),
            Some(SuiteKind::Interactive)
        );
        assert!(benchmark("does-not-exist").is_none());
    }

    #[test]
    fn tier_selection_partitions_the_full_suite() {
        let total: usize = SuiteKind::ALL.iter().map(|&k| tier(k).len()).sum();
        assert_eq!(total, full_suite().len());
        assert_eq!(benchmark_names_for(SuiteKind::Server).len(), 3);
        assert_eq!(benchmark_names_for(SuiteKind::Interactive).len(), 3);
    }

    #[test]
    fn every_benchmark_reference_window_at_least_training() {
        for b in full_suite() {
            assert!(
                b.inputs.reference.max_instructions >= b.inputs.training.max_instructions,
                "{}: reference window smaller than training",
                b.name
            );
        }
    }
}
