//! The benchmark registry: the nineteen MediaBench and SPEC CPU2000 programs
//! the paper evaluates, with their training and reference inputs.

use crate::input::InputPair;
use crate::program::Program;
use crate::programs;

/// Which suite a benchmark comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// MediaBench multimedia kernels.
    MediaBench,
    /// SPEC CPU2000 integer benchmarks.
    SpecInt,
    /// SPEC CPU2000 floating-point benchmarks.
    SpecFp,
}

impl std::fmt::Display for SuiteKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteKind::MediaBench => f.write_str("MediaBench"),
            SuiteKind::SpecInt => f.write_str("SPEC CINT2000"),
            SuiteKind::SpecFp => f.write_str("SPEC CFP2000"),
        }
    }
}

/// One benchmark: its program model and input pair.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name as the paper spells it (e.g. `"adpcm decode"`).
    pub name: &'static str,
    /// The suite the benchmark belongs to.
    pub suite: SuiteKind,
    /// The structural program model.
    pub program: Program,
    /// Training and reference inputs.
    pub inputs: InputPair,
}

impl Benchmark {
    fn new(name: &'static str, suite: SuiteKind, (program, inputs): (Program, InputPair)) -> Self {
        Benchmark {
            name,
            suite,
            program,
            inputs,
        }
    }
}

/// All nineteen benchmarks, in the order the paper's tables list them.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "adpcm decode",
            SuiteKind::MediaBench,
            programs::adpcm::decode(),
        ),
        Benchmark::new(
            "adpcm encode",
            SuiteKind::MediaBench,
            programs::adpcm::encode(),
        ),
        Benchmark::new(
            "epic decode",
            SuiteKind::MediaBench,
            programs::epic::decode(),
        ),
        Benchmark::new(
            "epic encode",
            SuiteKind::MediaBench,
            programs::epic::encode(),
        ),
        Benchmark::new(
            "g721 decode",
            SuiteKind::MediaBench,
            programs::g721::decode(),
        ),
        Benchmark::new(
            "g721 encode",
            SuiteKind::MediaBench,
            programs::g721::encode(),
        ),
        Benchmark::new("gsm decode", SuiteKind::MediaBench, programs::gsm::decode()),
        Benchmark::new("gsm encode", SuiteKind::MediaBench, programs::gsm::encode()),
        Benchmark::new(
            "jpeg compress",
            SuiteKind::MediaBench,
            programs::jpeg::compress(),
        ),
        Benchmark::new(
            "jpeg decompress",
            SuiteKind::MediaBench,
            programs::jpeg::decompress(),
        ),
        Benchmark::new(
            "mpeg2 decode",
            SuiteKind::MediaBench,
            programs::mpeg2::decode(),
        ),
        Benchmark::new(
            "mpeg2 encode",
            SuiteKind::MediaBench,
            programs::mpeg2::encode(),
        ),
        Benchmark::new("gzip", SuiteKind::SpecInt, programs::gzip::gzip()),
        Benchmark::new("vpr", SuiteKind::SpecInt, programs::vpr::vpr()),
        Benchmark::new("mcf", SuiteKind::SpecInt, programs::mcf::mcf()),
        Benchmark::new("swim", SuiteKind::SpecFp, programs::swim::swim()),
        Benchmark::new("applu", SuiteKind::SpecFp, programs::applu::applu()),
        Benchmark::new("art", SuiteKind::SpecFp, programs::art::art()),
        Benchmark::new("equake", SuiteKind::SpecFp, programs::equake::equake()),
    ]
}

/// Looks up a single benchmark by its paper name (case-insensitive).
pub fn benchmark(name: &str) -> Option<Benchmark> {
    let lower = name.to_lowercase();
    suite().into_iter().find(|b| b.name.to_lowercase() == lower)
}

/// The names of all benchmarks, in table order.
pub fn benchmark_names() -> Vec<&'static str> {
    suite().into_iter().map(|b| b.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nineteen_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 19);
        let media = s
            .iter()
            .filter(|b| b.suite == SuiteKind::MediaBench)
            .count();
        let spec_int = s.iter().filter(|b| b.suite == SuiteKind::SpecInt).count();
        let spec_fp = s.iter().filter(|b| b.suite == SuiteKind::SpecFp).count();
        assert_eq!(media, 12);
        assert_eq!(spec_int, 3);
        assert_eq!(spec_fp, 4);
    }

    #[test]
    fn names_are_unique() {
        let mut names = benchmark_names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("mcf").is_some());
        assert!(benchmark("MCF").is_some());
        assert!(benchmark("jpeg compress").is_some());
        assert!(benchmark("does-not-exist").is_none());
    }

    #[test]
    fn every_benchmark_reference_window_at_least_training() {
        for b in suite() {
            assert!(
                b.inputs.reference.max_instructions >= b.inputs.training.max_instructions,
                "{}: reference window smaller than training",
                b.name
            );
        }
    }
}
