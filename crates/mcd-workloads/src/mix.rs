//! Instruction-mix descriptors.
//!
//! Each compute block of a synthetic program is characterized by an
//! [`InstructionMix`]: the fraction of each instruction class, the typical
//! dependence distance (instruction-level parallelism), the memory footprint
//! and access pattern, and the branch behaviour. The trace generator expands a
//! block into a concrete instruction sequence with these statistics; which
//! clock domains end up busy — and which have slack for the DVFS algorithms to
//! harvest — follows directly from the mix.

use mcd_sim::instruction::InstrClass;

/// Statistical description of a compute block's instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct InstructionMix {
    /// Fraction of simple integer ALU operations.
    pub int_alu: f64,
    /// Fraction of integer multiplies/divides.
    pub int_mul: f64,
    /// Fraction of floating-point adds.
    pub fp_add: f64,
    /// Fraction of floating-point multiplies.
    pub fp_mul: f64,
    /// Fraction of floating-point divides / square roots.
    pub fp_div: f64,
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of branches.
    pub branch: f64,
    /// Mean dependence distance between an instruction and its operands, in
    /// dynamic instructions. Small values serialize execution (low ILP); larger
    /// values leave functional units idle waiting for work instead.
    pub dep_distance_mean: f64,
    /// Data working-set size in bytes. Footprints beyond 64 KB spill the L1,
    /// beyond 1 MB spill the L2.
    pub working_set_bytes: u64,
    /// Access stride in bytes; `0` requests a pseudo-random pattern over the
    /// working set (pointer chasing).
    pub stride_bytes: u64,
    /// Probability that a data-dependent branch is taken.
    pub branch_taken_rate: f64,
    /// Fraction of branches whose outcome is effectively unpredictable
    /// (data-dependent), as opposed to loop-closing or heavily biased branches.
    pub branch_irregularity: f64,
}

impl InstructionMix {
    /// Normalizes the class fractions so they sum to one.
    ///
    /// # Panics
    ///
    /// Panics if all fractions are zero or any is negative.
    pub fn normalized(mut self) -> Self {
        let sum = self.int_alu
            + self.int_mul
            + self.fp_add
            + self.fp_mul
            + self.fp_div
            + self.load
            + self.store
            + self.branch;
        assert!(sum > 0.0, "instruction mix must have at least one class");
        for f in [
            self.int_alu,
            self.int_mul,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
            self.load,
            self.store,
            self.branch,
        ] {
            assert!(f >= 0.0, "instruction mix fractions must be non-negative");
        }
        self.int_alu /= sum;
        self.int_mul /= sum;
        self.fp_add /= sum;
        self.fp_mul /= sum;
        self.fp_div /= sum;
        self.load /= sum;
        self.store /= sum;
        self.branch /= sum;
        self
    }

    /// Cumulative distribution over instruction classes, in the canonical order
    /// of [`InstrClass::ALL`]. Used by the generator to sample classes.
    pub fn cumulative(&self) -> [(InstrClass, f64); 8] {
        let fractions = [
            (InstrClass::IntAlu, self.int_alu),
            (InstrClass::IntMul, self.int_mul),
            (InstrClass::FpAdd, self.fp_add),
            (InstrClass::FpMul, self.fp_mul),
            (InstrClass::FpDiv, self.fp_div),
            (InstrClass::Load, self.load),
            (InstrClass::Store, self.store),
            (InstrClass::Branch, self.branch),
        ];
        let mut acc = 0.0;
        let mut out = fractions;
        for item in &mut out {
            acc += item.1;
            item.1 = acc;
        }
        out
    }

    /// Fraction of floating-point instructions of any kind.
    pub fn fp_fraction(&self) -> f64 {
        self.fp_add + self.fp_mul + self.fp_div
    }

    /// Fraction of memory instructions (loads + stores).
    pub fn memory_fraction(&self) -> f64 {
        self.load + self.store
    }

    // ---------------------------------------------------------------------
    // Presets used by the benchmark models.
    // ---------------------------------------------------------------------

    /// Control-heavy integer code: compares, shifts, short dependence chains,
    /// unpredictable branches (Huffman coding, parsers, compressors).
    pub fn branchy_int() -> Self {
        InstructionMix {
            int_alu: 0.48,
            int_mul: 0.01,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.22,
            store: 0.09,
            branch: 0.20,
            dep_distance_mean: 2.5,
            working_set_bytes: 32 * 1024,
            stride_bytes: 0,
            branch_taken_rate: 0.52,
            branch_irregularity: 0.55,
        }
        .normalized()
    }

    /// Regular integer arithmetic over arrays (scaling, quantization, pixel
    /// manipulation): high ILP, streaming accesses, predictable branches.
    pub fn streaming_int() -> Self {
        InstructionMix {
            int_alu: 0.52,
            int_mul: 0.06,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.24,
            store: 0.12,
            branch: 0.06,
            dep_distance_mean: 6.0,
            working_set_bytes: 48 * 1024,
            stride_bytes: 8,
            branch_taken_rate: 0.85,
            branch_irregularity: 0.05,
        }
        .normalized()
    }

    /// Dense floating-point kernels (DCT, FIR filters, stencil updates): FP
    /// dominated, good ILP, streaming memory references.
    pub fn fp_kernel() -> Self {
        InstructionMix {
            int_alu: 0.16,
            int_mul: 0.01,
            fp_add: 0.28,
            fp_mul: 0.24,
            fp_div: 0.01,
            load: 0.20,
            store: 0.06,
            branch: 0.04,
            dep_distance_mean: 5.0,
            working_set_bytes: 96 * 1024,
            stride_bytes: 8,
            branch_taken_rate: 0.92,
            branch_irregularity: 0.02,
        }
        .normalized()
    }

    /// Long-latency floating-point code with recurrences (equation solvers):
    /// serial FP chains including divides.
    pub fn fp_recurrence() -> Self {
        InstructionMix {
            int_alu: 0.14,
            int_mul: 0.0,
            fp_add: 0.30,
            fp_mul: 0.22,
            fp_div: 0.04,
            load: 0.20,
            store: 0.06,
            branch: 0.04,
            dep_distance_mean: 1.8,
            working_set_bytes: 256 * 1024,
            stride_bytes: 8,
            branch_taken_rate: 0.9,
            branch_irregularity: 0.03,
        }
        .normalized()
    }

    /// Pointer-chasing, cache-hostile integer code (mcf's network simplex,
    /// sparse graph walks): loads dominate, dependence distance is tiny, the
    /// working set dwarfs the L2.
    pub fn pointer_chase() -> Self {
        InstructionMix {
            int_alu: 0.30,
            int_mul: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.40,
            store: 0.10,
            branch: 0.20,
            dep_distance_mean: 1.5,
            working_set_bytes: 8 * 1024 * 1024,
            stride_bytes: 0,
            branch_taken_rate: 0.5,
            branch_irregularity: 0.35,
        }
        .normalized()
    }

    /// Streaming memory-bound floating point (swim-style stencil over grids
    /// larger than the L2).
    pub fn fp_streaming_memory() -> Self {
        InstructionMix {
            int_alu: 0.14,
            int_mul: 0.0,
            fp_add: 0.26,
            fp_mul: 0.18,
            fp_div: 0.01,
            load: 0.27,
            store: 0.10,
            branch: 0.04,
            dep_distance_mean: 7.0,
            working_set_bytes: 4 * 1024 * 1024,
            stride_bytes: 64,
            branch_taken_rate: 0.93,
            branch_irregularity: 0.02,
        }
        .normalized()
    }

    /// Event-loop polling between bursts of real work (interactive programs
    /// waiting on input, servers between requests): branch- and load-heavy
    /// checks over a tiny footprint, short dependence chains, almost always
    /// the not-ready path — every domain is nearly idle, which is exactly the
    /// slack a DVFS controller should harvest during an idle phase.
    pub fn idle_poll() -> Self {
        InstructionMix {
            int_alu: 0.36,
            int_mul: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.30,
            store: 0.04,
            branch: 0.30,
            dep_distance_mean: 1.6,
            working_set_bytes: 4 * 1024,
            stride_bytes: 4,
            branch_taken_rate: 0.9,
            branch_irregularity: 0.06,
        }
        .normalized()
    }

    /// Scalar integer cryptography and checksumming (TLS record processing,
    /// content hashing in a request handler): multiply-rich integer code with
    /// a small working set and predictable control flow.
    pub fn scalar_crypto() -> Self {
        InstructionMix {
            int_alu: 0.42,
            int_mul: 0.20,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.20,
            store: 0.08,
            branch: 0.10,
            dep_distance_mean: 3.2,
            working_set_bytes: 16 * 1024,
            stride_bytes: 8,
            branch_taken_rate: 0.88,
            branch_irregularity: 0.05,
        }
        .normalized()
    }

    /// Table-driven integer DSP (ADPCM/GSM codecs): small working set, mostly
    /// integer ALU with some multiplies, moderately predictable branches.
    pub fn dsp_int() -> Self {
        InstructionMix {
            int_alu: 0.50,
            int_mul: 0.08,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.20,
            store: 0.08,
            branch: 0.14,
            dep_distance_mean: 2.2,
            working_set_bytes: 8 * 1024,
            stride_bytes: 4,
            branch_taken_rate: 0.6,
            branch_irregularity: 0.25,
        }
        .normalized()
    }
}

impl Default for InstructionMix {
    fn default() -> Self {
        InstructionMix {
            int_alu: 0.45,
            int_mul: 0.02,
            fp_add: 0.05,
            fp_mul: 0.03,
            fp_div: 0.0,
            load: 0.25,
            store: 0.10,
            branch: 0.10,
            dep_distance_mean: 3.0,
            working_set_bytes: 64 * 1024,
            stride_bytes: 8,
            branch_taken_rate: 0.6,
            branch_irregularity: 0.15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_normalized(mix: &InstructionMix) {
        let sum = mix.int_alu
            + mix.int_mul
            + mix.fp_add
            + mix.fp_mul
            + mix.fp_div
            + mix.load
            + mix.store
            + mix.branch;
        assert!((sum - 1.0).abs() < 1e-9, "mix fractions sum to {sum}");
    }

    #[test]
    fn presets_are_normalized() {
        for mix in [
            InstructionMix::branchy_int(),
            InstructionMix::streaming_int(),
            InstructionMix::fp_kernel(),
            InstructionMix::fp_recurrence(),
            InstructionMix::pointer_chase(),
            InstructionMix::fp_streaming_memory(),
            InstructionMix::dsp_int(),
            InstructionMix::idle_poll(),
            InstructionMix::scalar_crypto(),
            InstructionMix::default().normalized(),
        ] {
            assert_normalized(&mix);
        }
    }

    #[test]
    fn cumulative_ends_at_one() {
        let mix = InstructionMix::fp_kernel();
        let cum = mix.cumulative();
        assert!((cum.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Monotone non-decreasing.
        for w in cum.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn preset_characters() {
        assert!(InstructionMix::fp_kernel().fp_fraction() > 0.4);
        assert!(InstructionMix::branchy_int().fp_fraction() < 1e-9);
        assert!(InstructionMix::pointer_chase().memory_fraction() > 0.4);
        assert!(InstructionMix::pointer_chase().working_set_bytes > 1024 * 1024);
        assert!(InstructionMix::dsp_int().working_set_bytes <= 64 * 1024);
        assert!(
            InstructionMix::branchy_int().branch_irregularity
                > InstructionMix::fp_kernel().branch_irregularity
        );
        assert!(InstructionMix::idle_poll().fp_fraction() < 1e-9);
        assert!(InstructionMix::idle_poll().working_set_bytes <= 8 * 1024);
        assert!(InstructionMix::scalar_crypto().int_mul > InstructionMix::dsp_int().int_mul);
    }

    #[test]
    #[should_panic]
    fn normalize_rejects_all_zero() {
        let _ = InstructionMix {
            int_alu: 0.0,
            int_mul: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            load: 0.0,
            store: 0.0,
            branch: 0.0,
            ..InstructionMix::default()
        }
        .normalized();
    }
}
