//! Second-tier workload composers: server-style request loops and
//! bursty/interactive duty cycles.
//!
//! The paper's nineteen benchmarks are batch programs — one long computation
//! with phase changes driven by the algorithm. Server and interactive
//! programs stress a DVFS controller differently: a request loop interleaves
//! short, heterogeneous per-request phases at a steady arrival rate, and an
//! interactive program alternates compute bursts with long idle stretches.
//! The composers here build such programs on top of the
//! [`ProgramBuilder`] DSL, so they flow through the trace generator, the
//! profiling crate, and every DVFS control scheme unchanged.
//!
//! * [`ServerWorkload`]: a steady request loop. Each batch iteration
//!   dispatches a fixed number of requests; each request runs one of several
//!   [`RequestClass`] handlers, assigned by a seeded weighted draw at build
//!   time, with per-request intensity jitter.
//! * [`BurstProfile`]: an idle–burst duty cycle. Each cycle runs a compute
//!   burst (size jittered per execution out of the input set's seeded
//!   stream) followed by an idle polling phase sized to hit a configured
//!   duty cycle.
//!
//! Both are deterministic: the same builder configuration and seed always
//! produce the identical program, and the same `(program, input)` pair
//! always produces the identical trace.

use crate::input::InputPair;
use crate::mix::InstructionMix;
use crate::program::{Program, ProgramBuilder, TripCount};
use crate::rng::WorkloadRng;

/// One kind of request a [`ServerWorkload`] serves: a named handler with its
/// instruction mix, nominal per-request size, and arrival weight.
#[derive(Debug, Clone)]
pub struct RequestClass {
    /// Handler name (becomes the subroutine name `handle_<name>`).
    pub name: String,
    /// Statistical character of the handler's instructions.
    pub mix: InstructionMix,
    /// Nominal dynamic instructions per request of this class.
    pub instructions: u32,
    /// Relative arrival weight; shares are normalized over all classes.
    pub weight: f64,
}

/// Composes a server-style request-loop program: a steady arrival loop whose
/// iterations dispatch a fixed number of requests, each handled by one of
/// several weighted [`RequestClass`]es.
///
/// ```
/// use mcd_workloads::server::ServerWorkload;
/// use mcd_workloads::mix::InstructionMix;
/// use mcd_workloads::program::TripCount;
///
/// let (program, inputs) = ServerWorkload::new("tiny_server")
///     .class("get", InstructionMix::streaming_int(), 400, 0.7)
///     .class("put", InstructionMix::branchy_int(), 600, 0.3)
///     .requests(16, TripCount::Scaled { base: 3, reference_factor: 2.0 })
///     .windows(30_000, 70_000)
///     .build();
/// assert!(program.subroutine_count() >= 4); // handlers + dispatch + main
/// assert!(inputs.reference.max_instructions > inputs.training.max_instructions);
/// ```
#[derive(Debug, Clone)]
pub struct ServerWorkload {
    name: String,
    classes: Vec<RequestClass>,
    requests_per_batch: u32,
    batches: TripCount,
    dispatch_instructions: u32,
    intensity_jitter: f64,
    seed: u64,
    training_window: u64,
    reference_window: u64,
}

impl ServerWorkload {
    /// Starts composing a server workload with the given program name.
    pub fn new(name: impl Into<String>) -> Self {
        ServerWorkload {
            name: name.into(),
            classes: Vec::new(),
            requests_per_batch: 24,
            batches: TripCount::Scaled {
                base: 4,
                reference_factor: 2.0,
            },
            dispatch_instructions: 140,
            intensity_jitter: 0.2,
            seed: 0x5e72_7665, // "serve"
            training_window: 80_000,
            reference_window: 170_000,
        }
    }

    /// Adds a request class with the given handler mix, nominal per-request
    /// size, and arrival weight.
    pub fn class(
        mut self,
        name: impl Into<String>,
        mix: InstructionMix,
        instructions: u32,
        weight: f64,
    ) -> Self {
        self.classes.push(RequestClass {
            name: name.into(),
            mix,
            instructions,
            weight,
        });
        self
    }

    /// Sets the request-loop shape: `per_batch` request slots unrolled in the
    /// loop body, repeated `batches` times (input-scaled, so the reference
    /// input serves more traffic than the training input).
    pub fn requests(mut self, per_batch: u32, batches: TripCount) -> Self {
        self.requests_per_batch = per_batch.max(1);
        self.batches = batches;
        self
    }

    /// Sets the per-request dispatch overhead (accept + parse + route),
    /// always run with the control-heavy [`InstructionMix::branchy_int`] mix.
    pub fn dispatch(mut self, instructions: u32) -> Self {
        self.dispatch_instructions = instructions.max(1);
        self
    }

    /// Sets the per-request intensity jitter: each slot scales its handler's
    /// work by a seeded draw from `[1 - jitter, 1 + jitter]`. Clamped to
    /// `[0, 0.9]`.
    pub fn intensity_jitter(mut self, jitter: f64) -> Self {
        self.intensity_jitter = jitter.clamp(0.0, 0.9);
        self
    }

    /// Sets the seed of the class-assignment and intensity draws. Distinct
    /// seeds produce distinct request sequences (and therefore distinct
    /// traces); the same seed always reproduces the same program.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the training and reference simulation windows (in instructions).
    pub fn windows(mut self, training: u64, reference: u64) -> Self {
        self.training_window = training;
        self.reference_window = reference;
        self
    }

    /// The normalized arrival shares of the configured classes, in class
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if no class has been added or the weights sum to zero.
    pub fn shares(&self) -> Vec<f64> {
        let sum: f64 = self.classes.iter().map(|c| c.weight).sum();
        assert!(
            !self.classes.is_empty() && sum > 0.0,
            "a server workload needs at least one positively weighted class"
        );
        self.classes.iter().map(|c| c.weight / sum).collect()
    }

    /// The class index assigned to each request slot of one batch — the
    /// seeded weighted draw the built program bakes in. Exposed so property
    /// tests can check empirical shares against the configured weights.
    pub fn slot_plan(&self) -> Vec<usize> {
        let shares = self.shares();
        let mut rng = WorkloadRng::seed_from_u64(self.seed);
        (0..self.requests_per_batch)
            .map(|_| {
                let draw = rng.next_f64();
                let mut acc = 0.0;
                for (i, share) in shares.iter().enumerate() {
                    acc += share;
                    if draw <= acc {
                        return i;
                    }
                }
                shares.len() - 1
            })
            .collect()
    }

    /// The per-slot handler intensities (the jitter draws following the slot
    /// plan on the same seeded stream).
    fn slot_intensities(&self) -> Vec<f64> {
        let mut rng = WorkloadRng::seed_from_u64(self.seed ^ 0x9e37_79b9);
        (0..self.requests_per_batch)
            .map(|_| 1.0 + self.intensity_jitter * (2.0 * rng.next_f64() - 1.0))
            .collect()
    }

    /// Builds the program and its input pair.
    ///
    /// # Panics
    ///
    /// Panics if no class has been added or the weights sum to zero.
    pub fn build(&self) -> (Program, InputPair) {
        let plan = self.slot_plan();
        let intensities = self.slot_intensities();
        let mut b = ProgramBuilder::new(self.name.clone());
        let handlers: Vec<_> = self
            .classes
            .iter()
            .map(|class| {
                // A small inner loop per handler so the profiling layer sees a
                // long-running node per request class, as it would in a real
                // server's per-request service routine.
                let chunk = (class.instructions / 4).max(1);
                let mix = class.mix.clone();
                let loop_name = format!("{}_work", class.name);
                b.subroutine(format!("handle_{}", class.name), move |s| {
                    s.repeat(loop_name, TripCount::Fixed(4), |l| {
                        l.block(chunk, mix.clone());
                    });
                })
            })
            .collect();
        let dispatch_instructions = self.dispatch_instructions;
        let dispatch = b.subroutine("dispatch", move |s| {
            s.block(dispatch_instructions, InstructionMix::branchy_int());
        });
        b.subroutine("main", |s| {
            // Server start-up: configuration parsing and socket setup.
            s.block(600, InstructionMix::streaming_int());
            s.repeat("request_loop", self.batches, |l| {
                for (slot, &class) in plan.iter().enumerate() {
                    l.call(dispatch);
                    l.call_scaled(handlers[class], intensities[slot]);
                }
            });
        });
        let program = b.build("main");
        let inputs = InputPair::new(self.training_window, self.reference_window, false);
        (program, inputs)
    }
}

/// Composes a bursty/interactive program: a duty-cycle loop whose iterations
/// run a compute burst followed by an idle polling phase.
///
/// The burst's dynamic size is jittered per execution out of the input set's
/// seeded stream (via [`BlockSpec::jitter`](crate::program::BlockSpec)), and
/// the static per-cycle burst scales are additionally jittered by the
/// profile's own seed — so both the program structure and the generated
/// trace vary with their respective seeds while the duty cycle stays inside
/// [`BurstProfile::duty_bounds`].
///
/// ```
/// use mcd_workloads::server::BurstProfile;
/// use mcd_workloads::mix::InstructionMix;
///
/// let profile = BurstProfile::new("tiny_burst")
///     .burst(InstructionMix::fp_kernel(), 1200)
///     .duty_cycle(0.3)
///     .jitter(0.2);
/// let (lo, hi) = profile.duty_bounds();
/// assert!(lo > 0.2 && hi < 0.45);
/// let (program, _inputs) = profile.build();
/// assert!(program.subroutine_by_name("burst").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct BurstProfile {
    name: String,
    burst_mix: InstructionMix,
    idle_mix: InstructionMix,
    burst_instructions: u32,
    duty_cycle: f64,
    jitter: f64,
    static_jitter: f64,
    cycles_per_period: u32,
    periods: TripCount,
    seed: u64,
    training_window: u64,
    reference_window: u64,
}

impl BurstProfile {
    /// Starts composing a bursty profile with the given program name.
    pub fn new(name: impl Into<String>) -> Self {
        BurstProfile {
            name: name.into(),
            burst_mix: InstructionMix::fp_kernel(),
            idle_mix: InstructionMix::idle_poll(),
            burst_instructions: 1500,
            duty_cycle: 0.3,
            jitter: 0.2,
            static_jitter: 0.1,
            cycles_per_period: 6,
            periods: TripCount::Scaled {
                base: 4,
                reference_factor: 2.0,
            },
            seed: 0x6275_7273, // "burs"
            training_window: 80_000,
            reference_window: 170_000,
        }
    }

    /// Sets the burst phase's mix and nominal size (instructions per burst).
    pub fn burst(mut self, mix: InstructionMix, instructions: u32) -> Self {
        self.burst_mix = mix;
        self.burst_instructions = instructions.max(4);
        self
    }

    /// Sets the idle phase's mix (defaults to [`InstructionMix::idle_poll`]).
    pub fn idle(mut self, mix: InstructionMix) -> Self {
        self.idle_mix = mix;
        self
    }

    /// Sets the nominal duty cycle: the fraction of each cycle's instructions
    /// spent in the burst phase. Clamped to `[0.02, 0.95]`.
    pub fn duty_cycle(mut self, duty: f64) -> Self {
        self.duty_cycle = duty.clamp(0.02, 0.95);
        self
    }

    /// Sets the dynamic burst-length jitter (per execution, drawn from the
    /// input set's seeded stream). Clamped to `[0, 0.6]`.
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 0.6);
        self
    }

    /// Sets the static per-cycle burst-scale jitter (baked into the program
    /// from the profile's seed). Clamped to `[0, 0.6]`.
    pub fn static_jitter(mut self, jitter: f64) -> Self {
        self.static_jitter = jitter.clamp(0.0, 0.6);
        self
    }

    /// Sets the duty-cycle loop shape: `per_period` distinct cycle slots
    /// unrolled in the loop body, repeated `periods` times (input-scaled).
    pub fn cycles(mut self, per_period: u32, periods: TripCount) -> Self {
        self.cycles_per_period = per_period.max(1);
        self.periods = periods;
        self
    }

    /// Sets the seed of the static per-cycle scale draws.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the training and reference simulation windows (in instructions).
    pub fn windows(mut self, training: u64, reference: u64) -> Self {
        self.training_window = training;
        self.reference_window = reference;
        self
    }

    /// The nominal idle-phase size implied by the duty cycle.
    fn idle_instructions(&self) -> u32 {
        let idle = (self.burst_instructions as f64) * (1.0 - self.duty_cycle) / self.duty_cycle;
        (idle.round() as u32).max(1)
    }

    /// The idle phase's poll-loop shape, `(polls, chunk)`: the nominal idle
    /// size split into ~200-instruction polling chunks, with the chunk
    /// re-sized so `polls × chunk` tracks the nominal size to within half a
    /// poll — small or non-multiple-of-200 idle phases quantize to their
    /// actual size instead of the nearest 200.
    fn idle_plan(&self) -> (u32, u32) {
        let total = self.idle_instructions();
        let polls = ((total + 100) / 200).max(1);
        let chunk = (((total as f64) / (polls as f64)).round() as u32).max(1);
        (polls, chunk)
    }

    /// The number of burst instructions a cycle nominally emits (the burst
    /// kernel's three executions of its chunk).
    fn burst_emitted(&self) -> u32 {
        3 * (self.burst_instructions / 3).max(1)
    }

    /// The guaranteed bounds of the realized per-cycle duty cycle, combining
    /// the dynamic and static jitters over the *emitted* burst and idle
    /// sizes (the same quantization [`BurstProfile::build`] applies).
    /// Generated traces measure within these bounds, up to the one
    /// loop-closing branch per loop iteration — a sub-percent effect.
    pub fn duty_bounds(&self) -> (f64, f64) {
        let (polls, chunk) = self.idle_plan();
        let idle = (polls * chunk) as f64;
        let burst = self.burst_emitted() as f64;
        let lo = burst * (1.0 - self.jitter) * (1.0 - self.static_jitter);
        let hi = burst * (1.0 + self.jitter) * (1.0 + self.static_jitter);
        (lo / (lo + idle), hi / (hi + idle))
    }

    /// The static burst scale of each cycle slot (the profile-seeded draws).
    fn slot_scales(&self) -> Vec<f64> {
        let mut rng = WorkloadRng::seed_from_u64(self.seed);
        (0..self.cycles_per_period)
            .map(|_| 1.0 + self.static_jitter * (2.0 * rng.next_f64() - 1.0))
            .collect()
    }

    /// Builds the program and its input pair.
    pub fn build(&self) -> (Program, InputPair) {
        let scales = self.slot_scales();
        let mut b = ProgramBuilder::new(self.name.clone());
        let burst_chunk = (self.burst_instructions / 3).max(1);
        let burst_mix = self.burst_mix.clone();
        let jitter = self.jitter;
        let burst = b.subroutine("burst", move |s| {
            s.repeat("burst_kernel", TripCount::Fixed(3), |l| {
                l.block_jittered(burst_chunk, burst_mix.clone(), jitter);
            });
        });
        let (polls, idle_chunk) = self.idle_plan();
        let idle_mix = self.idle_mix.clone();
        let idle = b.subroutine("idle_wait", move |s| {
            s.repeat("poll_loop", TripCount::Fixed(polls), |l| {
                l.block(idle_chunk, idle_mix.clone());
            });
        });
        b.subroutine("main", |s| {
            // Interactive start-up: load state, draw the first frame.
            s.block(500, InstructionMix::streaming_int());
            s.repeat("duty_loop", self.periods, |l| {
                for &scale in &scales {
                    l.call_scaled(burst, scale);
                    l.call(idle);
                }
            });
        });
        let program = b.build("main");
        let inputs = InputPair::new(self.training_window, self.reference_window, false);
        (program, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_trace;
    use crate::input::InputSet;

    fn instr_count(trace: &[mcd_sim::instruction::TraceItem]) -> usize {
        trace.iter().filter(|t| t.as_instr().is_some()).count()
    }

    fn tiny_server() -> ServerWorkload {
        ServerWorkload::new("tiny_server")
            .class("get", InstructionMix::streaming_int(), 400, 0.6)
            .class("put", InstructionMix::branchy_int(), 600, 0.4)
            .requests(
                12,
                TripCount::Scaled {
                    base: 2,
                    reference_factor: 2.0,
                },
            )
            .windows(15_000, 40_000)
    }

    #[test]
    fn server_build_is_deterministic() {
        let a = tiny_server().build();
        let b = tiny_server().build();
        assert_eq!(a.0, b.0);
        let ta = generate_trace(&a.0, &a.1.training);
        let tb = generate_trace(&b.0, &b.1.training);
        assert_eq!(ta, tb);
    }

    #[test]
    fn server_seeds_change_the_slot_plan() {
        let a = tiny_server().seed(1);
        let b = tiny_server().seed(2);
        assert_ne!(a.slot_plan(), b.slot_plan());
        let (pa, ia) = a.build();
        let (pb, _) = b.build();
        assert_ne!(
            generate_trace(&pa, &ia.training),
            generate_trace(&pb, &ia.training)
        );
    }

    #[test]
    fn server_shares_normalize_and_plan_covers_all_classes() {
        let w = tiny_server();
        let shares = w.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let plan = w.slot_plan();
        assert_eq!(plan.len(), 12);
        assert!(plan.iter().all(|&c| c < 2));
    }

    #[test]
    #[should_panic]
    fn server_without_classes_is_rejected() {
        let _ = ServerWorkload::new("empty").build();
    }

    #[test]
    fn burst_duty_bounds_bracket_the_nominal_duty() {
        let p = BurstProfile::new("t")
            .duty_cycle(0.3)
            .jitter(0.2)
            .static_jitter(0.1);
        let (lo, hi) = p.duty_bounds();
        assert!(lo < 0.3 && 0.3 < hi, "bounds ({lo}, {hi}) must bracket 0.3");
    }

    /// Idle phases smaller than (or not a multiple of) the 200-instruction
    /// poll chunk must not fall outside the documented bounds: the bounds
    /// and `build()` share the same quantization.
    #[test]
    fn burst_duty_bounds_hold_under_idle_quantization() {
        for (burst, duty) in [(100u32, 0.5), (1500, 0.95), (900, 0.13), (250, 0.7)] {
            let profile = BurstProfile::new("quant")
                .burst(InstructionMix::dsp_int(), burst)
                .duty_cycle(duty)
                .jitter(0.0)
                .static_jitter(0.0)
                .cycles(2, TripCount::Fixed(6))
                .windows(1_000_000, 1_000_000);
            let (lo, hi) = profile.duty_bounds();
            let (program, inputs) = profile.build();
            let trace = generate_trace(&program, &inputs.training);
            let burst_id = program.subroutine_by_name("burst").unwrap().id;
            let idle_id = program.subroutine_by_name("idle_wait").unwrap().id;
            let mut stack = Vec::new();
            let (mut in_burst, mut in_idle) = (0u64, 0u64);
            for item in &trace {
                use mcd_sim::instruction::{Marker, TraceItem};
                match item {
                    TraceItem::Marker(Marker::SubroutineEnter { subroutine, .. }) => {
                        stack.push(*subroutine)
                    }
                    TraceItem::Marker(Marker::SubroutineExit { .. }) => {
                        stack.pop();
                    }
                    TraceItem::Instr(_) => match stack.last() {
                        Some(&s) if s == burst_id => in_burst += 1,
                        Some(&s) if s == idle_id => in_idle += 1,
                        _ => {}
                    },
                    TraceItem::Marker(_) => {}
                }
            }
            let measured = in_burst as f64 / (in_burst + in_idle) as f64;
            assert!(
                measured >= lo - 0.02 && measured <= hi + 0.02,
                "burst {burst} duty {duty}: measured {measured:.3} outside ({lo:.3}, {hi:.3})"
            );
        }
    }

    #[test]
    fn burst_build_generates_a_trace_with_both_phases() {
        let profile = BurstProfile::new("tiny_burst")
            .burst(InstructionMix::fp_kernel(), 900)
            .duty_cycle(0.25)
            .cycles(
                3,
                TripCount::Scaled {
                    base: 3,
                    reference_factor: 2.0,
                },
            )
            .windows(15_000, 40_000);
        let (program, inputs) = profile.build();
        assert!(program.subroutine_by_name("burst").is_some());
        assert!(program.subroutine_by_name("idle_wait").is_some());
        let trace = generate_trace(&program, &inputs.training);
        assert!(instr_count(&trace) >= 10_000);
        let fp = trace
            .iter()
            .filter_map(|t| t.as_instr())
            .filter(|i| i.class.is_fp())
            .count();
        assert!(fp > 0, "bursts must contribute FP work");
    }

    #[test]
    fn burst_input_seed_changes_the_trace() {
        let (program, inputs) = BurstProfile::new("tiny_burst")
            .windows(15_000, 40_000)
            .build();
        let a = generate_trace(&program, &inputs.training);
        let b = generate_trace(
            &program,
            &InputSet {
                seed: inputs.training.seed ^ 1,
                ..inputs.training.clone()
            },
        );
        assert_ne!(a, b);
    }
}
