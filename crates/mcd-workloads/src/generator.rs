//! Deterministic expansion of a [`Program`] into a dynamic instruction/marker
//! trace.
//!
//! The generator walks the program structure under a given [`InputSet`]:
//! blocks expand into instruction sequences drawn from their
//! [`InstructionMix`](crate::mix::InstructionMix), loops iterate according to
//! their (input-scaled) trip counts, calls descend into callees, and
//! input-dependent regions pick the branch matching the input kind. Structural
//! markers (subroutine/loop entry and exit) are interleaved exactly where an
//! ATOM-instrumented binary would report them.
//!
//! Everything is derived from the input set's seed, so a given (program, input)
//! pair always produces the identical trace.

use crate::input::InputSet;
use crate::mix::InstructionMix;
use crate::program::{Element, InputKind, Program, Subroutine};
use crate::rng::WorkloadRng;
use mcd_sim::instruction::{CallSiteId, Instr, InstrClass, Marker, TraceItem};
use mcd_sim::trace::PackedTrace;

/// Call-site value used for the program entry point (`main` has no caller).
pub const ROOT_CALL_SITE: CallSiteId = CallSiteId(u32::MAX);

/// Expands programs into traces.
#[derive(Debug, Clone)]
pub struct TraceGenerator<'a> {
    program: &'a Program,
}

impl<'a> TraceGenerator<'a> {
    /// Creates a generator for `program`.
    pub fn new(program: &'a Program) -> Self {
        TraceGenerator { program }
    }

    /// Generates the dynamic trace of the program under `input` directly into
    /// the compact [`PackedTrace`] encoding, truncated to the input's
    /// instruction window. This is the primary entry point of the hot path:
    /// no `Vec<TraceItem>` is ever materialized.
    pub fn generate_packed(&self, input: &InputSet) -> PackedTrace {
        let mut ctx = GenContext {
            program: self.program,
            input_kind: input.kind,
            budget: input.max_instructions,
            emitted: 0,
            rng: WorkloadRng::seed_from_u64(input.seed ^ hash_name(&self.program.name)),
            trace: PackedTrace::with_capacity(input.max_instructions.min(1 << 22) as usize),
            block_positions: 0,
        };
        let entry = self.program.subroutine(self.program.entry);
        ctx.emit_subroutine(entry, ROOT_CALL_SITE, 1.0);
        ctx.trace
    }

    /// Generates the dynamic trace in the legacy item representation
    /// (a decode of [`TraceGenerator::generate_packed`], bit-identical to the
    /// historical output).
    pub fn generate(&self, input: &InputSet) -> Vec<TraceItem> {
        self.generate_packed(input).to_items()
    }
}

/// Convenience wrapper: generate the packed trace of `program` under `input`.
pub fn generate_packed(program: &Program, input: &InputSet) -> PackedTrace {
    TraceGenerator::new(program).generate_packed(input)
}

/// Convenience wrapper: generate the trace of `program` under `input` as
/// legacy items (decoded from the packed encoding; prefer [`generate_packed`]
/// on hot paths).
pub fn generate_trace(program: &Program, input: &InputSet) -> Vec<TraceItem> {
    TraceGenerator::new(program).generate(input)
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate benchmark seeds.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

struct GenContext<'a> {
    program: &'a Program,
    input_kind: InputKind,
    budget: u64,
    emitted: u64,
    rng: WorkloadRng,
    trace: PackedTrace,
    /// Monotone counter giving each block execution a distinct phase for its
    /// strided address stream.
    block_positions: u64,
}

impl GenContext<'_> {
    fn exhausted(&self) -> bool {
        self.emitted >= self.budget
    }

    fn emit_subroutine(&mut self, sub: &Subroutine, site: CallSiteId, intensity: f64) {
        if self.exhausted() {
            return;
        }
        self.trace.push_marker(&Marker::SubroutineEnter {
            subroutine: sub.id,
            call_site: site,
        });
        self.emit_elements(&sub.body, sub, 0, intensity);
        self.trace
            .push_marker(&Marker::SubroutineExit { subroutine: sub.id });
    }

    fn emit_elements(
        &mut self,
        elements: &[Element],
        sub: &Subroutine,
        depth: u32,
        intensity: f64,
    ) {
        for (idx, element) in elements.iter().enumerate() {
            if self.exhausted() {
                return;
            }
            match element {
                Element::Block(block) => {
                    let pc_base = block_pc_base(sub.id.0, depth, idx as u32);
                    // Jitter draws only happen for jittered blocks, so programs
                    // built entirely from fixed-size blocks keep their
                    // historical traces bit-for-bit.
                    let jitter_factor = if block.jitter > 0.0 {
                        1.0 + block.jitter * (2.0 * self.rng.next_f64() - 1.0)
                    } else {
                        1.0
                    };
                    let scaled = ((block.instructions as f64) * intensity * jitter_factor)
                        .round()
                        .max(1.0) as u32;
                    self.emit_block(scaled, &block.mix, pc_base, sub.id.0);
                }
                Element::Loop(spec) => {
                    let trips = spec.trips.trips(self.input_kind);
                    if trips == 0 {
                        continue;
                    }
                    self.trace
                        .push_marker(&Marker::LoopEnter { loop_id: spec.id });
                    let back_edge_pc = block_pc_base(sub.id.0, depth, idx as u32) | 0xF00;
                    for trip in 0..trips {
                        if self.exhausted() {
                            break;
                        }
                        self.emit_elements(&spec.body, sub, depth + 1, intensity);
                        if self.exhausted() {
                            break;
                        }
                        // Loop-closing branch: taken on every iteration but the last.
                        let taken = trip + 1 < trips;
                        self.push_instr(Instr::branch(back_edge_pc, taken, back_edge_pc & !0xFFF));
                    }
                    self.trace
                        .push_marker(&Marker::LoopExit { loop_id: spec.id });
                }
                Element::Call(call) => {
                    let callee = self.program.subroutine(call.callee);
                    self.emit_subroutine(callee, call.site, intensity * call.intensity);
                }
                Element::InputDependent {
                    training,
                    reference,
                } => {
                    let chosen = match self.input_kind {
                        InputKind::Training => training,
                        InputKind::Reference => reference,
                    };
                    self.emit_elements(chosen, sub, depth + 1, intensity);
                }
            }
        }
    }

    fn emit_block(&mut self, instructions: u32, mix: &InstructionMix, pc_base: u64, sub_id: u32) {
        let cumulative = mix.cumulative();
        let data_base = 0x1000_0000u64 + (sub_id as u64) * 0x0400_0000;
        let working_set = mix.working_set_bytes.max(64);
        self.block_positions += 1;
        let mut position = self.block_positions * 29;

        for i in 0..instructions {
            if self.exhausted() {
                return;
            }
            let pc = pc_base + (i as u64) * 4;
            let draw: f64 = self.rng.next_f64();
            let class = cumulative
                .iter()
                .find(|(_, c)| draw <= *c)
                .map(|(k, _)| *k)
                .unwrap_or(InstrClass::IntAlu);

            let mut instr = match class {
                InstrClass::Load | InstrClass::Store => {
                    position = position.wrapping_add(1);
                    let offset = if mix.stride_bytes > 0 {
                        (position * mix.stride_bytes) % working_set
                    } else {
                        (self.rng.next_u64() % working_set) & !0x7
                    };
                    if class == InstrClass::Load {
                        Instr::load(pc, data_base + offset)
                    } else {
                        Instr::store(pc, data_base + offset)
                    }
                }
                InstrClass::Branch => {
                    let irregular = self.rng.next_f64() < mix.branch_irregularity;
                    let taken = if irregular {
                        self.rng.next_f64() < mix.branch_taken_rate
                    } else {
                        // Biased branch: almost always taken.
                        self.rng.next_f64() < 0.97
                    };
                    Instr::branch(pc, taken, pc + 32)
                }
                other => Instr::op(pc, other),
            };

            // Dependence distances: an approximately geometric distribution with
            // the mix's mean, clamped to the simulator's dependence window.
            let d1 = self.sample_dependence(mix.dep_distance_mean, i);
            if let Some(d) = d1 {
                instr = instr.with_dep1(d);
            }
            if self.rng.next_f64() < 0.4 {
                if let Some(d) = self.sample_dependence(mix.dep_distance_mean * 2.0, i) {
                    instr = instr.with_dep2(d);
                }
            }
            self.push_instr(instr);
        }
    }

    fn sample_dependence(&mut self, mean: f64, emitted_in_block: u32) -> Option<u16> {
        if emitted_in_block == 0 && self.emitted == 0 {
            return None;
        }
        // Geometric-ish sample: -mean * ln(U) rounded up, clamped to [1, 64].
        let u: f64 = self.rng.next_f64().max(1e-12);
        let d = (-(mean.max(1.0)) * u.ln()).ceil();
        let d = d.clamp(1.0, 64.0) as u16;
        Some(d)
    }

    fn push_instr(&mut self, instr: Instr) {
        self.trace.push_instr(&instr);
        self.emitted += 1;
    }
}

fn block_pc_base(sub_id: u32, depth: u32, index: u32) -> u64 {
    // Deterministic, well-spread static code addresses: one 64 KB region per
    // subroutine, sub-regions per nesting depth and element index.
    0x0040_0000u64 + (sub_id as u64) * 0x1_0000 + (depth as u64) * 0x2000 + (index as u64) * 0x400
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramBuilder, TripCount};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new("tiny");
        let helper = b.subroutine("helper", |s| {
            s.block(50, InstructionMix::fp_kernel());
        });
        b.subroutine("main", |s| {
            s.block(20, InstructionMix::branchy_int());
            s.repeat(
                "outer",
                TripCount::Scaled {
                    base: 5,
                    reference_factor: 4.0,
                },
                |l| {
                    l.call(helper);
                    l.block(30, InstructionMix::streaming_int());
                },
            );
        });
        b.build("main")
    }

    fn instr_count(trace: &[TraceItem]) -> u64 {
        trace.iter().filter(|t| t.as_instr().is_some()).count() as u64
    }

    #[test]
    fn generation_is_deterministic() {
        let p = tiny_program();
        let input = InputSet::training(10_000);
        let a = generate_trace(&p, &input);
        let b = generate_trace(&p, &input);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn reference_input_runs_longer() {
        let p = tiny_program();
        let train = generate_trace(&p, &InputSet::training(1_000_000));
        let reference = generate_trace(&p, &InputSet::reference(1_000_000));
        assert!(instr_count(&reference) > instr_count(&train) * 2);
    }

    #[test]
    fn window_truncates_generation() {
        let p = tiny_program();
        let full = generate_trace(&p, &InputSet::reference(1_000_000));
        let truncated = generate_trace(&p, &InputSet::reference(100));
        assert!(instr_count(&full) > 100);
        assert_eq!(instr_count(&truncated), 100);
    }

    #[test]
    fn markers_are_properly_nested_for_untruncated_runs() {
        let p = tiny_program();
        let trace = generate_trace(&p, &InputSet::training(1_000_000));
        let mut depth: i64 = 0;
        let mut saw_loop = false;
        let mut saw_call_site = false;
        for item in &trace {
            match item {
                TraceItem::Marker(Marker::SubroutineEnter { call_site, .. }) => {
                    depth += 1;
                    if *call_site != ROOT_CALL_SITE {
                        saw_call_site = true;
                    }
                }
                TraceItem::Marker(Marker::SubroutineExit { .. }) => depth -= 1,
                TraceItem::Marker(Marker::LoopEnter { .. }) => {
                    saw_loop = true;
                    depth += 1;
                }
                TraceItem::Marker(Marker::LoopExit { .. }) => depth -= 1,
                TraceItem::Instr(_) => {}
            }
            assert!(depth >= 0, "exit marker without matching enter");
        }
        assert_eq!(depth, 0, "all markers should be matched");
        assert!(saw_loop);
        assert!(saw_call_site);
    }

    #[test]
    fn fp_program_emits_fp_instructions() {
        let p = tiny_program();
        let trace = generate_trace(&p, &InputSet::reference(50_000));
        let fp = trace
            .iter()
            .filter_map(|t| t.as_instr())
            .filter(|i| i.class.is_fp())
            .count();
        let total = instr_count(&trace) as usize;
        assert!(
            fp > total / 10,
            "expected a noticeable FP fraction, got {fp}/{total}"
        );
    }

    #[test]
    fn branch_targets_and_memory_addresses_present() {
        let p = tiny_program();
        let trace = generate_trace(&p, &InputSet::training(20_000));
        let mut loads = 0;
        let mut branches = 0;
        for i in trace.iter().filter_map(|t| t.as_instr()) {
            match i.class {
                InstrClass::Load | InstrClass::Store => {
                    assert!(i.mem_addr.is_some());
                    loads += 1;
                }
                InstrClass::Branch => {
                    assert!(i.branch.is_some());
                    branches += 1;
                }
                _ => {}
            }
        }
        assert!(loads > 0);
        assert!(branches > 0);
    }

    #[test]
    fn jittered_blocks_vary_with_the_seed_but_stay_bounded() {
        let mut b = ProgramBuilder::new("jittery");
        b.subroutine("main", |s| {
            s.repeat("cycle", TripCount::Fixed(40), |l| {
                l.block_jittered(100, InstructionMix::streaming_int(), 0.25);
            });
        });
        let p = b.build("main");
        let a = generate_trace(&p, &InputSet::training(1_000_000));
        let b2 = generate_trace(&p, &InputSet::training(1_000_000).with_seed(42));
        // Same program, same seed: deterministic. Different seed: different
        // burst lengths, hence a different trace length.
        let again = generate_trace(&p, &InputSet::training(1_000_000));
        assert_eq!(a, again);
        assert_ne!(instr_count(&a), instr_count(&b2));
        // Each execution stays within the jitter bounds (plus the per-trip
        // loop-closing branch).
        let total = instr_count(&a);
        let per_trip = total as f64 / 40.0;
        assert!(per_trip >= 100.0 * 0.75, "per-trip {per_trip} below bound");
        assert!(
            per_trip <= 100.0 * 1.25 + 1.0,
            "per-trip {per_trip} above bound"
        );
    }

    #[test]
    fn different_input_kinds_choose_different_paths() {
        let mut b = ProgramBuilder::new("paths");
        b.subroutine("main", |s| {
            s.input_dependent(
                |tr| {
                    tr.block(100, InstructionMix::branchy_int());
                },
                |rf| {
                    rf.block(100, InstructionMix::fp_kernel());
                },
            );
        });
        let p = b.build("main");
        let train = generate_trace(&p, &InputSet::training(10_000));
        let reference = generate_trace(&p, &InputSet::reference(10_000));
        let fp_train = train
            .iter()
            .filter_map(|t| t.as_instr())
            .filter(|i| i.class.is_fp())
            .count();
        let fp_ref = reference
            .iter()
            .filter_map(|t| t.as_instr())
            .filter(|i| i.class.is_fp())
            .count();
        assert_eq!(fp_train, 0);
        assert!(fp_ref > 10);
    }
}
