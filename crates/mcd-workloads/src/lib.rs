//! # mcd-workloads — synthetic MediaBench and SPEC CPU2000 workload models
//!
//! The paper evaluates its profile-driven DVFS mechanism on nineteen
//! benchmarks compiled for Alpha and traced with ATOM. Neither the binaries
//! nor the toolchain are available as Rust, so this crate provides the
//! substitute substrate (see DESIGN.md §2): each benchmark is modelled as a
//! structural [`Program`](program::Program) — subroutines, loops, call sites,
//! and input-dependent regions — whose compute blocks carry instruction-mix
//! descriptors ([`mix::InstructionMix`]). The [`generator`] expands a program
//! under a training or reference [`input::InputSet`] into the dynamic
//! instruction/marker trace the `mcd-sim` simulator consumes and the
//! `mcd-profiling` crate builds call trees from.
//!
//! Beyond the paper's nineteen batch programs, the [`server`] module
//! composes a second workload tier — server-style request loops
//! ([`server::ServerWorkload`]) and bursty/interactive duty cycles
//! ([`server::BurstProfile`]) — registered under
//! [`suite::SuiteKind::Server`] / [`suite::SuiteKind::Interactive`] and
//! returned by [`suite::server_suite`].
//!
//! ## Example
//!
//! ```
//! use mcd_workloads::suite;
//! use mcd_workloads::generator::generate_trace;
//!
//! let bench = suite::benchmark("adpcm decode").expect("known benchmark");
//! let trace = generate_trace(&bench.program, &bench.inputs.training);
//! assert!(trace.len() > 10_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod input;
pub mod mix;
pub mod program;
pub mod programs;
pub mod rng;
pub mod server;
pub mod suite;

pub use generator::{generate_trace, TraceGenerator};
pub use input::{InputPair, InputSet};
pub use mix::InstructionMix;
pub use program::{InputKind, Program, ProgramBuilder, TripCount};
pub use server::{BurstProfile, RequestClass, ServerWorkload};
pub use suite::{benchmark, full_suite, server_suite, suite, Benchmark, SuiteKind};
