//! A small, deterministic pseudo-random number generator for trace expansion.
//!
//! The workload generator only needs a seedable, reproducible stream of
//! uniform draws; it does not need cryptographic quality. This xoshiro256++
//! implementation keeps the crate dependency-free while giving a
//! well-distributed stream (the same algorithm family `rand`'s small RNGs use).
//!
//! ```
//! use mcd_workloads::rng::WorkloadRng;
//! let mut a = WorkloadRng::seed_from_u64(7);
//! let mut b = WorkloadRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let u = a.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! ```

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct WorkloadRng {
    state: [u64; 4],
}

impl WorkloadRng {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64 as
    /// the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        WorkloadRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = WorkloadRng::seed_from_u64(123);
        let mut b = WorkloadRng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = WorkloadRng::seed_from_u64(1);
        let mut b = WorkloadRng::seed_from_u64(2);
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_draws_cover_the_unit_interval() {
        let mut rng = WorkloadRng::seed_from_u64(99);
        let n = 100_000;
        let mut sum = 0.0;
        let mut low = 0usize;
        for _ in 0..n {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
            if u < 0.5 {
                low += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
        let frac_low = low as f64 / n as f64;
        assert!((frac_low - 0.5).abs() < 0.01);
    }
}
