//! Structural program representation.
//!
//! A [`Program`] is the synthetic stand-in for an application binary: a set of
//! subroutines, each containing straight-line compute blocks, loops (with
//! input-dependent trip counts), calls to other subroutines through distinct
//! static call sites, and — for applications whose behaviour differs between
//! the training and reference data sets — input-dependent regions. The trace
//! generator walks this structure to produce the dynamic instruction/marker
//! stream consumed by the simulator, and the profiling crate reconstructs call
//! trees from the same markers, exactly as ATOM-instrumented binaries allowed
//! the paper's authors to do.

use crate::mix::InstructionMix;
use mcd_sim::instruction::{CallSiteId, LoopId, SubroutineId};

/// Which input set a run uses (MediaBench's small "training" input versus the
/// larger "reference" input, or SPEC's train/ref sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputKind {
    /// The small training input used for profiling runs.
    Training,
    /// The larger reference input used for production runs.
    Reference,
}

/// How a loop's trip count responds to the input set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TripCount {
    /// The same number of iterations regardless of input.
    Fixed(u32),
    /// `base` iterations on the training input, `base × reference_factor` on the
    /// reference input (rounded).
    Scaled {
        /// Iterations under the training input.
        base: u32,
        /// Multiplier applied for the reference input.
        reference_factor: f64,
    },
}

impl TripCount {
    /// The number of iterations under the given input kind.
    pub fn trips(&self, input: InputKind) -> u32 {
        match *self {
            TripCount::Fixed(n) => n,
            TripCount::Scaled {
                base,
                reference_factor,
            } => match input {
                InputKind::Training => base,
                InputKind::Reference => ((base as f64) * reference_factor).round().max(1.0) as u32,
            },
        }
    }
}

/// A straight-line compute block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// Number of dynamic instructions the block expands to per execution.
    pub instructions: u32,
    /// Statistical character of those instructions.
    pub mix: InstructionMix,
    /// Fractional size jitter: each execution of the block draws a scale
    /// factor uniformly from `[1 - jitter, 1 + jitter]` out of the input
    /// set's seeded stream, so burst lengths vary between executions (and
    /// between seeds) while staying inside configured bounds. Zero — the
    /// default, and the value every `block` call produces — keeps the
    /// historical fixed-size expansion bit-for-bit.
    pub jitter: f64,
}

/// A loop within a subroutine (a strongly connected component of its CFG).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSpec {
    /// Static loop identifier, unique within the program.
    pub id: LoopId,
    /// Human-readable name (used in reports).
    pub name: String,
    /// Trip count, possibly input dependent.
    pub trips: TripCount,
    /// Elements executed once per iteration.
    pub body: Vec<Element>,
}

/// A call to another subroutine through a specific static call site.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSpec {
    /// The callee.
    pub callee: SubroutineId,
    /// The static call site within the caller.
    pub site: CallSiteId,
    /// Work multiplier applied to the callee's blocks for this invocation.
    ///
    /// This models argument-dependent behaviour: the same subroutine called
    /// with different arguments (epic's `internal_filter` called on different
    /// pyramid levels, for instance) performs different amounts of work at
    /// different call sites. A value of `1.0` means the callee's nominal size.
    pub intensity: f64,
}

/// One element of a subroutine or loop body.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Straight-line computation.
    Block(BlockSpec),
    /// A nested loop.
    Loop(LoopSpec),
    /// A call to another subroutine.
    Call(CallSpec),
    /// A region that is only executed under one of the input sets. This models
    /// applications (mpeg2 decode, vpr) whose reference inputs exercise code
    /// paths the training input never reaches.
    InputDependent {
        /// Elements executed under the training input.
        training: Vec<Element>,
        /// Elements executed under the reference input.
        reference: Vec<Element>,
    },
}

/// A static subroutine.
#[derive(Debug, Clone, PartialEq)]
pub struct Subroutine {
    /// Identifier (index into [`Program::subroutines`]).
    pub id: SubroutineId,
    /// Name (as a symbol table would give it).
    pub name: String,
    /// Body elements, executed in order.
    pub body: Vec<Element>,
}

/// A whole synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (benchmark name).
    pub name: String,
    /// All subroutines; index equals [`SubroutineId`].
    pub subroutines: Vec<Subroutine>,
    /// The entry subroutine (`main`).
    pub entry: SubroutineId,
}

impl Program {
    /// Looks up a subroutine by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn subroutine(&self, id: SubroutineId) -> &Subroutine {
        &self.subroutines[id.0 as usize]
    }

    /// Looks up a subroutine by name, if present.
    pub fn subroutine_by_name(&self, name: &str) -> Option<&Subroutine> {
        self.subroutines.iter().find(|s| s.name == name)
    }

    /// Number of subroutines.
    pub fn subroutine_count(&self) -> usize {
        self.subroutines.len()
    }

    /// Total number of static loops in the program.
    pub fn loop_count(&self) -> usize {
        fn count(elements: &[Element]) -> usize {
            elements
                .iter()
                .map(|e| match e {
                    Element::Loop(l) => 1 + count(&l.body),
                    Element::InputDependent {
                        training,
                        reference,
                    } => count(training) + count(reference),
                    _ => 0,
                })
                .sum()
        }
        self.subroutines.iter().map(|s| count(&s.body)).sum()
    }

    /// Total number of static call sites in the program.
    pub fn call_site_count(&self) -> usize {
        fn count(elements: &[Element]) -> usize {
            elements
                .iter()
                .map(|e| match e {
                    Element::Call(_) => 1,
                    Element::Loop(l) => count(&l.body),
                    Element::InputDependent {
                        training,
                        reference,
                    } => count(training) + count(reference),
                    _ => 0,
                })
                .sum()
        }
        self.subroutines.iter().map(|s| count(&s.body)).sum()
    }
}

/// Builder used by the benchmark definitions to assemble a [`Program`] with
/// automatically assigned loop and call-site identifiers.
///
/// ```
/// use mcd_workloads::program::{ProgramBuilder, TripCount};
/// use mcd_workloads::mix::InstructionMix;
///
/// let mut b = ProgramBuilder::new("example");
/// let helper = b.subroutine("helper", |s| {
///     s.block(500, InstructionMix::streaming_int());
/// });
/// b.subroutine("main", |s| {
///     s.repeat("outer", TripCount::Fixed(10), |l| {
///         l.call(helper);
///         l.block(200, InstructionMix::branchy_int());
///     });
/// });
/// let program = b.build("main");
/// assert_eq!(program.subroutine_count(), 2);
/// assert_eq!(program.loop_count(), 1);
/// assert_eq!(program.call_site_count(), 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    subroutines: Vec<Subroutine>,
    next_loop: u32,
    next_site: u32,
}

impl ProgramBuilder {
    /// Starts building a program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            subroutines: Vec::new(),
            next_loop: 0,
            next_site: 0,
        }
    }

    /// Defines a subroutine; the closure receives a [`BodyBuilder`] to populate
    /// its body. Returns the new subroutine's id (usable at later call sites).
    pub fn subroutine(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut BodyBuilder<'_>),
    ) -> SubroutineId {
        let id = SubroutineId(self.subroutines.len() as u32);
        // Temporarily push a placeholder so nested builders can allocate ids.
        let name = name.into();
        let mut elements = Vec::new();
        {
            let mut body = BodyBuilder {
                builder: self,
                elements: &mut elements,
            };
            f(&mut body);
        }
        self.subroutines.push(Subroutine {
            id,
            name,
            body: elements,
        });
        id
    }

    /// Finalizes the program with the named subroutine as the entry point.
    ///
    /// # Panics
    ///
    /// Panics if no subroutine has the given entry name.
    pub fn build(self, entry: &str) -> Program {
        let entry_id = self
            .subroutines
            .iter()
            .find(|s| s.name == entry)
            .unwrap_or_else(|| panic!("entry subroutine `{entry}` not defined"))
            .id;
        Program {
            name: self.name,
            subroutines: self.subroutines,
            entry: entry_id,
        }
    }

    fn alloc_loop(&mut self) -> LoopId {
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        id
    }

    fn alloc_site(&mut self) -> CallSiteId {
        let id = CallSiteId(self.next_site);
        self.next_site += 1;
        id
    }
}

/// Builder for the body of a subroutine, loop or input-dependent region.
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    elements: &'a mut Vec<Element>,
}

impl BodyBuilder<'_> {
    /// Appends a straight-line compute block of `instructions` instructions.
    pub fn block(&mut self, instructions: u32, mix: InstructionMix) -> &mut Self {
        self.block_jittered(instructions, mix, 0.0)
    }

    /// Appends a compute block whose dynamic size varies per execution: each
    /// expansion scales `instructions` by a seeded uniform draw from
    /// `[1 - jitter, 1 + jitter]`. `jitter` is clamped to `[0, 0.95]`.
    pub fn block_jittered(
        &mut self,
        instructions: u32,
        mix: InstructionMix,
        jitter: f64,
    ) -> &mut Self {
        self.elements.push(Element::Block(BlockSpec {
            instructions,
            mix,
            jitter: jitter.clamp(0.0, 0.95),
        }));
        self
    }

    /// Appends a loop named `name` with the given trip count; the closure
    /// populates the loop body.
    pub fn repeat(
        &mut self,
        name: impl Into<String>,
        trips: TripCount,
        f: impl FnOnce(&mut BodyBuilder<'_>),
    ) -> &mut Self {
        let id = self.builder.alloc_loop();
        let mut body = Vec::new();
        {
            let mut inner = BodyBuilder {
                builder: &mut *self.builder,
                elements: &mut body,
            };
            f(&mut inner);
        }
        self.elements.push(Element::Loop(LoopSpec {
            id,
            name: name.into(),
            trips,
            body,
        }));
        self
    }

    /// Appends a call to `callee` through a fresh static call site.
    pub fn call(&mut self, callee: SubroutineId) -> &mut Self {
        self.call_scaled(callee, 1.0)
    }

    /// Appends a call to `callee` through a fresh static call site, scaling the
    /// callee's work by `intensity` for this invocation (argument-dependent
    /// behaviour).
    pub fn call_scaled(&mut self, callee: SubroutineId, intensity: f64) -> &mut Self {
        let site = self.builder.alloc_site();
        self.elements.push(Element::Call(CallSpec {
            callee,
            site,
            intensity,
        }));
        self
    }

    /// Appends a region whose contents differ between the training and
    /// reference inputs.
    pub fn input_dependent(
        &mut self,
        training: impl FnOnce(&mut BodyBuilder<'_>),
        reference: impl FnOnce(&mut BodyBuilder<'_>),
    ) -> &mut Self {
        let mut train_elems = Vec::new();
        {
            let mut inner = BodyBuilder {
                builder: &mut *self.builder,
                elements: &mut train_elems,
            };
            training(&mut inner);
        }
        let mut ref_elems = Vec::new();
        {
            let mut inner = BodyBuilder {
                builder: &mut *self.builder,
                elements: &mut ref_elems,
            };
            reference(&mut inner);
        }
        self.elements.push(Element::InputDependent {
            training: train_elems,
            reference: ref_elems,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_scaling() {
        let fixed = TripCount::Fixed(7);
        assert_eq!(fixed.trips(InputKind::Training), 7);
        assert_eq!(fixed.trips(InputKind::Reference), 7);
        let scaled = TripCount::Scaled {
            base: 10,
            reference_factor: 3.5,
        };
        assert_eq!(scaled.trips(InputKind::Training), 10);
        assert_eq!(scaled.trips(InputKind::Reference), 35);
    }

    #[test]
    fn builder_assigns_unique_ids() {
        let mut b = ProgramBuilder::new("t");
        let callee = b.subroutine("callee", |s| {
            s.block(10, InstructionMix::default().normalized());
        });
        b.subroutine("main", |s| {
            s.repeat("l0", TripCount::Fixed(2), |l| {
                l.call(callee);
                l.repeat("l1", TripCount::Fixed(3), |l2| {
                    l2.block(5, InstructionMix::default().normalized());
                });
            });
            s.call(callee);
        });
        let p = b.build("main");
        assert_eq!(p.subroutine_count(), 2);
        assert_eq!(p.loop_count(), 2);
        assert_eq!(p.call_site_count(), 2);
        assert_eq!(p.entry, SubroutineId(1));
        assert!(p.subroutine_by_name("callee").is_some());
        assert!(p.subroutine_by_name("nonexistent").is_none());

        // Loop and call-site ids are distinct.
        fn collect_loops(elems: &[Element], out: &mut Vec<u32>) {
            for e in elems {
                match e {
                    Element::Loop(l) => {
                        out.push(l.id.0);
                        collect_loops(&l.body, out);
                    }
                    Element::InputDependent {
                        training,
                        reference,
                    } => {
                        collect_loops(training, out);
                        collect_loops(reference, out);
                    }
                    _ => {}
                }
            }
        }
        let mut loops = Vec::new();
        for s in &p.subroutines {
            collect_loops(&s.body, &mut loops);
        }
        loops.sort_unstable();
        let len = loops.len();
        loops.dedup();
        assert_eq!(loops.len(), len);
    }

    #[test]
    fn input_dependent_regions_counted_in_both_branches() {
        let mut b = ProgramBuilder::new("t");
        b.subroutine("main", |s| {
            s.input_dependent(
                |tr| {
                    tr.block(10, InstructionMix::default().normalized());
                },
                |rf| {
                    rf.repeat("ref_only", TripCount::Fixed(4), |l| {
                        l.block(20, InstructionMix::default().normalized());
                    });
                },
            );
        });
        let p = b.build("main");
        assert_eq!(p.loop_count(), 1);
    }

    #[test]
    fn jittered_blocks_record_their_clamped_jitter() {
        let mut b = ProgramBuilder::new("t");
        b.subroutine("main", |s| {
            s.block(10, InstructionMix::default().normalized());
            s.block_jittered(10, InstructionMix::default().normalized(), 0.3);
            s.block_jittered(10, InstructionMix::default().normalized(), 7.0);
        });
        let p = b.build("main");
        let jitters: Vec<f64> = p.subroutines[0]
            .body
            .iter()
            .map(|e| match e {
                Element::Block(spec) => spec.jitter,
                _ => panic!("only blocks expected"),
            })
            .collect();
        assert_eq!(jitters, vec![0.0, 0.3, 0.95]);
    }

    #[test]
    #[should_panic]
    fn build_rejects_unknown_entry() {
        let b = ProgramBuilder::new("t");
        let _ = b.build("main");
    }
}
