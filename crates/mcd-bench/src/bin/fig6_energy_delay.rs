//! Figure 6: energy×delay improvement of every registered reconfiguration
//! scheme relative to the MCD baseline.
//!
//! Run with `--quick` to evaluate a six-benchmark subset.

use mcd_bench::{metric_figure, run_main, Metric, Options};
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        metric_figure(
            "Figure 6. Energy-delay improvement results (relative to the MCD baseline).",
            Metric::EnergyDelay,
            &Options::parse(),
        )
    })
}
