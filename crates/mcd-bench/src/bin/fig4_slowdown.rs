//! Figure 4: performance degradation of every registered reconfiguration
//! scheme relative to the baseline MCD processor.
//!
//! Run with `--quick` to evaluate a six-benchmark subset.

use mcd_bench::{metric_figure, run_main, Metric, Options};
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        metric_figure(
            "Figure 4. Performance degradation results (relative to the MCD baseline).",
            Metric::Slowdown,
            &Options::parse(),
        )
    })
}
