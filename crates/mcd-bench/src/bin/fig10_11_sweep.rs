//! Figures 10 and 11: energy savings and energy×delay improvement versus
//! achieved slowdown for the on-line, off-line and profile-based (L+F)
//! algorithms, produced by sweeping the slowdown threshold (off-line and
//! profile) and the controller aggressiveness (on-line).
//!
//! This sweep is the evaluation service's showcase: one [`Evaluator`] takes
//! every (configuration × benchmark) job up front, so each benchmark's
//! reference trace and full-speed baseline are computed exactly once across
//! all ten configuration points, and each point's jobs run only the schemes
//! its series reads (the decay sweep does not re-run the off-line oracle).

use mcd_bench::{
    default_config, report_cache, run_main, selected_benchmarks, Options, SuiteSelection,
};
use mcd_dvfs::evaluation::{BenchmarkEvaluation, Summary};
use mcd_dvfs::online::OnlineConfig;
use mcd_dvfs::scheme::names;
use mcd_dvfs::service::{EvalJob, Evaluator, ResultStream};
use mcd_workloads::suite::Benchmark;
use std::process::ExitCode;

fn scheme_means(evals: &[BenchmarkEvaluation], scheme: &str) -> (f64, f64, f64) {
    let collect = |f: &dyn Fn(&BenchmarkEvaluation) -> Option<f64>| -> f64 {
        Summary::of(&evals.iter().filter_map(f).collect::<Vec<_>>()).mean
    };
    (
        collect(&|e| Some(e.result(scheme)?.metrics.performance_degradation)),
        collect(&|e| Some(e.result(scheme)?.metrics.energy_savings)),
        collect(&|e| Some(e.result(scheme)?.metrics.energy_delay_improvement)),
    )
}

fn print_row(series: &str, parameter: &str, means: (f64, f64, f64)) {
    println!(
        "{:<12} {:>12} {:>16.1} {:>16.1} {:>22.1}",
        series,
        parameter,
        means.0 * 100.0,
        means.1 * 100.0,
        means.2 * 100.0
    );
}

fn main() -> ExitCode {
    run_main(|| {
        let options = Options::parse();
        // The sweep multiplies run time by the number of points, so it always
        // uses a compact subset unless --full is given explicitly; --suite
        // picks the tier the sweep (and its subset rule) applies to.
        let subset = Options {
            quick: !options.full || options.quick,
            ..options.clone()
        };
        let benches = selected_benchmarks(&subset, SuiteSelection::Paper)?;

        let slowdown_targets = [0.02, 0.04, 0.07, 0.10, 0.14];
        let online_decays = [2.0, 6.0, 12.0, 25.0, 50.0];

        // One service for the whole sweep: shared baselines, shared cache
        // (installed by default_config), one worker pool. The base config's
        // slowdown/online values are irrelevant — every job overrides the
        // parameter its series sweeps.
        let evaluator = Evaluator::builder()
            .config(default_config(&options, false))
            .build();

        // Submit everything up front; streams are drained in print order
        // while the workers keep chewing through later points.
        let threshold_batches: Vec<(f64, ResultStream)> = slowdown_targets
            .iter()
            .map(|&d| {
                let jobs = benches
                    .iter()
                    .map(|b: &Benchmark| {
                        EvalJob::new(b.clone())
                            .with_slowdown(d)
                            .with_schemes([names::OFFLINE, names::PROFILE])
                    })
                    .collect();
                (d, evaluator.submit_all(jobs))
            })
            .collect();
        let decay_batches: Vec<(f64, ResultStream)> = online_decays
            .iter()
            .map(|&decay| {
                let jobs = benches
                    .iter()
                    .map(|b: &Benchmark| {
                        EvalJob::new(b.clone())
                            .with_online(OnlineConfig {
                                decay_mhz: decay,
                                ..OnlineConfig::default()
                            })
                            .with_schemes([names::ONLINE])
                    })
                    .collect();
                (decay, evaluator.submit_all(jobs))
            })
            .collect();

        println!("Figures 10 and 11. Energy savings and energy-delay improvement vs. slowdown.");
        println!();
        println!(
            "{:<12} {:>12} {:>16} {:>16} {:>22}",
            "series", "parameter", "slowdown (%)", "energy save (%)", "energy-delay impr (%)"
        );
        println!("{}", "-".repeat(84));

        // Off-line and profile-based: sweep the slowdown threshold d.
        for (d, stream) in threshold_batches {
            eprintln!("  collecting d={d:.2} ...");
            let evals = stream.collect()?;
            let label = format!("d={:.0}%", d * 100.0);
            print_row("off-line", &label, scheme_means(&evals, names::OFFLINE));
            print_row("L+F", &label, scheme_means(&evals, names::PROFILE));
        }

        // On-line: sweep the decay rate (more aggressive decay = more slowdown).
        for (decay, stream) in decay_batches {
            eprintln!("  collecting decay={decay} ...");
            let evals = stream.collect()?;
            print_row(
                "on-line",
                &format!("decay={decay}"),
                scheme_means(&evals, names::ONLINE),
            );
        }

        let memo = evaluator.memo_stats();
        eprintln!(
            "  baselines: {} computed, {} reused across {} jobs",
            memo.misses,
            memo.hits,
            memo.lookups()
        );
        report_cache();
        Ok(())
    })
}
