//! Figures 10 and 11: energy savings and energy×delay improvement versus
//! achieved slowdown for the on-line, off-line and profile-based (L+F)
//! algorithms, produced by sweeping the slowdown threshold (off-line and
//! profile) and the controller aggressiveness (on-line).

use mcd_bench::{
    evaluate_all, mean, parallelism, quick_requested, report_cache, run_main, selected_suite,
    shared_cache,
};
use mcd_dvfs::evaluation::{BenchmarkEvaluation, EvaluationConfig};
use mcd_dvfs::online::OnlineConfig;
use mcd_dvfs::scheme::names;
use std::process::ExitCode;

fn scheme_means(evals: &[BenchmarkEvaluation], scheme: &str) -> (f64, f64, f64) {
    let collect = |f: &dyn Fn(&BenchmarkEvaluation) -> Option<f64>| -> f64 {
        mean(&evals.iter().filter_map(f).collect::<Vec<_>>())
    };
    (
        collect(&|e| Some(e.result(scheme)?.metrics.performance_degradation)),
        collect(&|e| Some(e.result(scheme)?.metrics.energy_savings)),
        collect(&|e| Some(e.result(scheme)?.metrics.energy_delay_improvement)),
    )
}

fn print_row(series: &str, parameter: &str, means: (f64, f64, f64)) {
    println!(
        "{:<12} {:>12} {:>16.1} {:>16.1} {:>22.1}",
        series,
        parameter,
        means.0 * 100.0,
        means.1 * 100.0,
        means.2 * 100.0
    );
}

fn main() -> ExitCode {
    run_main(|| {
        let quick = quick_requested();
        // The sweep multiplies run time by the number of points, so it always
        // uses a compact subset unless --full is given explicitly.
        let full = std::env::args().any(|a| a == "--full");
        let benches = selected_suite(!full || quick);

        let slowdown_targets = [0.02, 0.04, 0.07, 0.10, 0.14];
        let online_decays = [2.0, 6.0, 12.0, 25.0, 50.0];

        println!("Figures 10 and 11. Energy savings and energy-delay improvement vs. slowdown.");
        println!();
        println!(
            "{:<12} {:>12} {:>16} {:>16} {:>22}",
            "series", "parameter", "slowdown (%)", "energy save (%)", "energy-delay impr (%)"
        );
        println!("{}", "-".repeat(84));

        // Off-line and profile-based: sweep the slowdown threshold d.
        for &d in &slowdown_targets {
            eprintln!("  sweeping d={d:.2} ...");
            let config = EvaluationConfig::default()
                .with_slowdown(d)
                .with_parallelism(parallelism())
                .with_cache(shared_cache());
            let evals = evaluate_all(&benches, &config)?;
            let label = format!("d={:.0}%", d * 100.0);
            print_row("off-line", &label, scheme_means(&evals, names::OFFLINE));
            print_row("L+F", &label, scheme_means(&evals, names::PROFILE));
        }

        // On-line: sweep the decay rate (more aggressive decay = more slowdown).
        for &decay in &online_decays {
            eprintln!("  sweeping decay={decay} ...");
            let config = EvaluationConfig {
                online: OnlineConfig {
                    decay_mhz: decay,
                    ..OnlineConfig::default()
                },
                ..EvaluationConfig::default()
            }
            .with_parallelism(parallelism())
            .with_cache(shared_cache());
            let evals = evaluate_all(&benches, &config)?;
            print_row(
                "on-line",
                &format!("decay={decay}"),
                scheme_means(&evals, names::ONLINE),
            );
        }
        report_cache();
        Ok(())
    })
}
