//! Figures 10 and 11: energy savings and energy×delay improvement versus
//! achieved slowdown for the on-line, off-line and profile-based (L+F)
//! algorithms, produced by sweeping the slowdown threshold (off-line and
//! profile) and the controller aggressiveness (on-line).

use mcd_bench::{mean, quick_requested, selected_suite};
use mcd_dvfs::evaluation::{evaluate_benchmark, EvaluationConfig};
use mcd_dvfs::online::OnlineConfig;

fn main() {
    let quick = quick_requested();
    // The sweep multiplies run time by the number of points, so it always uses
    // a compact subset unless --full is given explicitly.
    let full = std::env::args().any(|a| a == "--full");
    let benches = selected_suite(!full || quick);

    let slowdown_targets = [0.02, 0.04, 0.07, 0.10, 0.14];
    let online_decays = [2.0, 6.0, 12.0, 25.0, 50.0];

    println!("Figures 10 and 11. Energy savings and energy-delay improvement vs. slowdown.");
    println!();
    println!(
        "{:<12} {:>12} {:>16} {:>16} {:>22}",
        "series", "parameter", "slowdown (%)", "energy save (%)", "energy-delay impr (%)"
    );
    println!("{}", "-".repeat(84));

    // Off-line and profile-based: sweep the slowdown threshold d.
    for &d in &slowdown_targets {
        let config = EvaluationConfig::default().with_slowdown(d);
        let evals: Vec<_> = benches
            .iter()
            .map(|b| {
                eprintln!("  d={d:.2} {}", b.name);
                evaluate_benchmark(b, &config)
            })
            .collect();
        let off_slow = mean(&evals.iter().map(|e| e.offline.metrics.performance_degradation).collect::<Vec<_>>());
        let off_save = mean(&evals.iter().map(|e| e.offline.metrics.energy_savings).collect::<Vec<_>>());
        let off_ed = mean(&evals.iter().map(|e| e.offline.metrics.energy_delay_improvement).collect::<Vec<_>>());
        let prof_slow = mean(&evals.iter().map(|e| e.profile.metrics.performance_degradation).collect::<Vec<_>>());
        let prof_save = mean(&evals.iter().map(|e| e.profile.metrics.energy_savings).collect::<Vec<_>>());
        let prof_ed = mean(&evals.iter().map(|e| e.profile.metrics.energy_delay_improvement).collect::<Vec<_>>());
        println!(
            "{:<12} {:>12} {:>16.1} {:>16.1} {:>22.1}",
            "off-line",
            format!("d={:.0}%", d * 100.0),
            off_slow * 100.0,
            off_save * 100.0,
            off_ed * 100.0
        );
        println!(
            "{:<12} {:>12} {:>16.1} {:>16.1} {:>22.1}",
            "L+F",
            format!("d={:.0}%", d * 100.0),
            prof_slow * 100.0,
            prof_save * 100.0,
            prof_ed * 100.0
        );
    }

    // On-line: sweep the decay rate (more aggressive decay = more slowdown).
    for &decay in &online_decays {
        let config = EvaluationConfig {
            online: OnlineConfig {
                decay_mhz: decay,
                ..OnlineConfig::default()
            },
            ..EvaluationConfig::default()
        };
        let evals: Vec<_> = benches
            .iter()
            .map(|b| {
                eprintln!("  decay={decay} {}", b.name);
                evaluate_benchmark(b, &config)
            })
            .collect();
        let slow = mean(&evals.iter().map(|e| e.online.metrics.performance_degradation).collect::<Vec<_>>());
        let save = mean(&evals.iter().map(|e| e.online.metrics.energy_savings).collect::<Vec<_>>());
        let ed = mean(&evals.iter().map(|e| e.online.metrics.energy_delay_improvement).collect::<Vec<_>>());
        println!(
            "{:<12} {:>12} {:>16.1} {:>16.1} {:>22.1}",
            "on-line",
            format!("decay={decay}"),
            slow * 100.0,
            save * 100.0,
            ed * 100.0
        );
    }
}
