//! Figures 10 and 11: energy savings and energy×delay improvement versus
//! achieved slowdown for the on-line, off-line and profile-based (L+F)
//! algorithms, produced by sweeping the slowdown threshold (off-line and
//! profile) and the controller aggressiveness (on-line).
//!
//! This sweep is the evaluation service's showcase: per benchmark the whole
//! parameter series is submitted as one *batched job group*
//! ([`EvalJob::batch`]), so the benchmark's reference trace and full-speed
//! baseline are paid for once per batch, the threshold series re-derives
//! every slowdown point from a single capture/shaker pass, and each scheme
//! family replays all points as parallel lanes of one batched trace pass.
//! The printed figures are bit-identical to submitting every job
//! independently — only the wall clock (and the stderr statistics) differ.

use mcd_bench::{
    default_config, report_cache, run_main, selected_benchmarks, Options, SuiteSelection,
};
use mcd_dvfs::evaluation::{BenchmarkEvaluation, Summary};
use mcd_dvfs::online::OnlineConfig;
use mcd_dvfs::scheme::names;
use mcd_dvfs::service::{EvalJob, Evaluator, ResultStream};
use mcd_workloads::suite::Benchmark;
use std::process::ExitCode;

fn scheme_means(evals: &[&BenchmarkEvaluation], scheme: &str) -> (f64, f64, f64) {
    let collect = |f: &dyn Fn(&BenchmarkEvaluation) -> Option<f64>| -> f64 {
        Summary::of(&evals.iter().filter_map(|e| f(e)).collect::<Vec<_>>()).mean
    };
    (
        collect(&|e| Some(e.result(scheme)?.metrics.performance_degradation)),
        collect(&|e| Some(e.result(scheme)?.metrics.energy_savings)),
        collect(&|e| Some(e.result(scheme)?.metrics.energy_delay_improvement)),
    )
}

fn print_row(series: &str, parameter: &str, means: (f64, f64, f64)) {
    println!(
        "{:<12} {:>12} {:>16.1} {:>16.1} {:>22.1}",
        series,
        parameter,
        means.0 * 100.0,
        means.1 * 100.0,
        means.2 * 100.0
    );
}

fn main() -> ExitCode {
    run_main(|| {
        let options = Options::parse();
        // The sweep multiplies run time by the number of points, so it always
        // uses a compact subset unless --full is given explicitly; --suite
        // picks the tier the sweep (and its subset rule) applies to.
        let subset = Options {
            quick: !options.full || options.quick,
            ..options.clone()
        };
        let benches = selected_benchmarks(&subset, SuiteSelection::Paper)?;

        let slowdown_targets = [0.02, 0.04, 0.07, 0.10, 0.14];
        let online_decays = [2.0, 6.0, 12.0, 25.0, 50.0];

        // One service for the whole sweep: shared baselines, shared cache
        // (installed by default_config), one worker pool. The base config's
        // slowdown/online values are irrelevant — every job overrides the
        // parameter its series sweeps.
        let evaluator = Evaluator::builder()
            .config(default_config(&options, false))
            .build();

        // One batched group per (benchmark, series): a batch spans one
        // benchmark, so the series axis runs *inside* the batch — five
        // slowdown (or decay) points as lanes of shared trace passes. All
        // groups are submitted up front; workers chew through them in
        // parallel.
        let threshold_groups: Vec<ResultStream> = benches
            .iter()
            .map(|b: &Benchmark| {
                let jobs = slowdown_targets
                    .iter()
                    .map(|&d| {
                        EvalJob::new(b.clone())
                            .with_slowdown(d)
                            .with_schemes([names::OFFLINE, names::PROFILE])
                    })
                    .collect();
                Ok(evaluator.submit_batch(EvalJob::batch(jobs)?))
            })
            .collect::<Result<_, mcd_dvfs::error::McdError>>()?;
        let decay_groups: Vec<ResultStream> = benches
            .iter()
            .map(|b: &Benchmark| {
                let jobs = online_decays
                    .iter()
                    .map(|&decay| {
                        EvalJob::new(b.clone())
                            .with_online(OnlineConfig {
                                decay_mhz: decay,
                                ..OnlineConfig::default()
                            })
                            .with_schemes([names::ONLINE])
                    })
                    .collect();
                Ok(evaluator.submit_batch(EvalJob::batch(jobs)?))
            })
            .collect::<Result<_, mcd_dvfs::error::McdError>>()?;

        println!("Figures 10 and 11. Energy savings and energy-delay improvement vs. slowdown.");
        println!();
        println!(
            "{:<12} {:>12} {:>16} {:>16} {:>22}",
            "series", "parameter", "slowdown (%)", "energy save (%)", "energy-delay impr (%)"
        );
        println!("{}", "-".repeat(84));

        // Each group's stream yields its benchmark's evaluations in point
        // order; regroup by point to print the same per-point suite means as
        // ever.
        let collect_groups = |groups: Vec<ResultStream>| -> Result<
            Vec<Vec<BenchmarkEvaluation>>,
            mcd_dvfs::error::McdError,
        > {
            groups
                .into_iter()
                .zip(&benches)
                .map(|(stream, b)| {
                    eprintln!("  collecting {} ...", b.name);
                    stream.collect()
                })
                .collect()
        };

        // Off-line and profile-based: sweep the slowdown threshold d.
        let per_bench = collect_groups(threshold_groups)?;
        for (pi, &d) in slowdown_targets.iter().enumerate() {
            let evals: Vec<&BenchmarkEvaluation> = per_bench.iter().map(|e| &e[pi]).collect();
            let label = format!("d={:.0}%", d * 100.0);
            print_row("off-line", &label, scheme_means(&evals, names::OFFLINE));
            print_row("L+F", &label, scheme_means(&evals, names::PROFILE));
        }

        // On-line: sweep the decay rate (more aggressive decay = more slowdown).
        let per_bench = collect_groups(decay_groups)?;
        for (pi, &decay) in online_decays.iter().enumerate() {
            let evals: Vec<&BenchmarkEvaluation> = per_bench.iter().map(|e| &e[pi]).collect();
            print_row(
                "on-line",
                &format!("decay={decay}"),
                scheme_means(&evals, names::ONLINE),
            );
        }

        let memo = evaluator.memo_stats();
        eprintln!(
            "  baselines: {} computed, {} reused across {} lookups",
            memo.misses,
            memo.hits,
            memo.lookups()
        );
        let batch = evaluator.batch_stats();
        eprintln!(
            "  batches: {} groups, {} members; baselines {} computed, {} reused; \
             {} batched passes, {} lanes ({:.1} lanes/pass)",
            batch.groups,
            batch.members,
            batch.baselines_computed,
            batch.baselines_reused,
            batch.passes,
            batch.lanes,
            batch.lanes_per_pass()
        );
        report_cache();
        Ok(())
    })
}
