//! Table 1: the SimpleScalar-style machine configuration of the simulated MCD
//! processor.

use mcd_sim::config::MachineConfig;

fn main() {
    println!("Table 1. Simulator configuration.");
    println!();
    let cfg = MachineConfig::default();
    for (name, value) in cfg.table1_rows() {
        println!("{name:<42} {value}");
    }
}
