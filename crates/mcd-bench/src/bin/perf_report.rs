//! `perf_report` — the dependency-free macro-benchmark harness behind the
//! repository's tracked performance trajectory (`BENCH_*.json`).
//!
//! The harness times six stages of the simulator's hot data path, each in a
//! fresh child process (re-executing this binary with `--child --stage X`) so
//! per-stage peak RSS is meaningful and every measurement is cold:
//!
//! * `trace_gen`     — packed trace generation for the quick suite,
//! * `baseline_sim`  — full-speed baseline simulation of those traces,
//! * `capture`       — the streaming windowed capture + shaker analysis
//!   (off-line pipeline stages 1–2),
//! * `fig4_quick`    — a complete cold `fig4 --quick` evaluation (baseline +
//!   off-line + on-line + profile on the six-benchmark subset, cache
//!   disabled),
//! * `sweep_point`   — one cold batched evaluation of a single slowdown
//!   point (off-line + profile, cache disabled),
//! * `sweep`         — the same evaluation over ten slowdown points as *one*
//!   batched job group: one capture/training pass, ten re-thresholded
//!   configuration lanes per trace pass.
//!
//! The parent runs each stage `--iters` times (default 3), reports
//! median wall-clock and peak RSS, and writes the JSON report (default
//! `BENCH_6.json`, see the README's "Performance" section for the schema).
//! `--check <file>` compares the measured `fig4_quick` and `sweep` medians
//! against a previously committed report and exits non-zero on a regression
//! beyond `--tolerance` (default 0.25, i.e. 25%); it also asserts the sweep's
//! sublinear scaling (ten batched points under 4× the one-point cost) — the
//! CI bench smoke gates.

use mcd_dvfs::evaluation::EvaluationConfig;
use mcd_dvfs::offline::OfflineConfig;
use mcd_dvfs::pipeline::AnalysisPipeline;
use mcd_dvfs::scheme::names;
use mcd_dvfs::service::{EvalJob, Evaluator};
use mcd_sim::config::MachineConfig;
use mcd_sim::simulator::{NullHooks, Simulator};
use mcd_sim::trace::PackedTrace;
use mcd_workloads::generator::generate_packed;
use mcd_workloads::suite::Benchmark;
use std::hint::black_box;
use std::io::Write;
use std::process::{Command, ExitCode, Stdio};
use std::time::Instant;

/// Report schema version (bump on layout changes).
const SCHEMA: u32 = 2;

const STAGES: [&str; 6] = [
    "trace_gen",
    "baseline_sim",
    "capture",
    "fig4_quick",
    "sweep_point",
    "sweep",
];

/// The sweep stages' slowdown points: `SWEEP_POINTS` evenly spaced targets
/// (`sweep_point` times only the first).
const SWEEP_POINTS: usize = 10;

/// The sublinearity gate: the ten-point batched sweep must cost less than
/// this multiple of the one-point run.
const SWEEP_SCALING_LIMIT: f64 = 4.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if flag("--child") {
        let stage = value("--stage").unwrap_or_default();
        return run_child(&stage);
    }

    let iters: usize = value("--iters")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let out = value("--out").unwrap_or_else(|| "BENCH_6.json".to_string());
    let check = value("--check");
    let tolerance: f64 = value("--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    // Read the committed baselines *before* measuring (the fresh report may
    // overwrite the same file). A committed report predating the sweep stage
    // simply skips that comparison.
    let (committed_fig4, committed_sweep) = match &check {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(json) => (
                json_stage_field(&json, "fig4_quick", "median_wall_ms"),
                json_stage_field(&json, "sweep", "median_wall_ms"),
            ),
            Err(err) => {
                eprintln!("perf_report: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => (None, None),
    };

    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(err) => {
            eprintln!("perf_report: cannot locate own executable: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut stages_json = Vec::new();
    let mut fig4_median = f64::NAN;
    let mut sweep_median = f64::NAN;
    let mut sweep_point_median = f64::NAN;
    for stage in STAGES {
        let mut walls = Vec::new();
        let mut rss = Vec::new();
        for iter in 0..iters {
            eprintln!("perf_report: {stage} iteration {}/{iters} ...", iter + 1);
            match run_stage_in_child(&exe, stage) {
                Ok((wall_ms, rss_kb)) => {
                    walls.push(wall_ms);
                    rss.push(rss_kb);
                }
                Err(err) => {
                    eprintln!("perf_report: stage {stage} failed: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let wall_median = median(&mut walls.clone());
        let rss_median = median(&mut rss.clone());
        match stage {
            "fig4_quick" => fig4_median = wall_median,
            "sweep" => sweep_median = wall_median,
            "sweep_point" => sweep_point_median = wall_median,
            _ => {}
        }
        eprintln!(
            "perf_report: {stage:<13} median {:>9.1} ms  peak-rss {:>8.0} KB",
            wall_median, rss_median
        );
        stages_json.push(format!(
            "    \"{stage}\": {{\n      \"median_wall_ms\": {wall_median:.3},\n      \
             \"peak_rss_kb\": {rss_median:.0},\n      \"runs_wall_ms\": [{}],\n      \
             \"runs_peak_rss_kb\": [{}]\n    }}",
            walls
                .iter()
                .map(|w| format!("{w:.3}"))
                .collect::<Vec<_>>()
                .join(", "),
            rss.iter()
                .map(|r| format!("{r:.0}"))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }

    let json = format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"bench\": \"mcd perf_report\",\n  \"mode\": \"quick\",\n  \
         \"iterations\": {iters},\n  \"stages\": {{\n{}\n  }}\n}}\n",
        stages_json.join(",\n")
    );
    if let Err(err) = std::fs::write(&out, &json) {
        eprintln!("perf_report: cannot write {out}: {err}");
        return ExitCode::FAILURE;
    }
    eprintln!("perf_report: wrote {out}");

    if let Some(path) = check {
        let Some(committed) = committed_fig4 else {
            eprintln!("perf_report: {path} has no fig4_quick median to check against");
            return ExitCode::FAILURE;
        };
        let gate = |stage: &str, measured: f64, committed: f64| -> bool {
            let limit = committed * (1.0 + tolerance);
            if measured > limit {
                eprintln!(
                    "perf_report: REGRESSION — {stage} median {measured:.1} ms exceeds \
                     committed {committed:.1} ms by more than {:.0}% (limit {limit:.1} ms)",
                    tolerance * 100.0
                );
                return false;
            }
            eprintln!(
                "perf_report: {stage} median {measured:.1} ms within {:.0}% of committed \
                 {committed:.1} ms",
                tolerance * 100.0
            );
            true
        };
        if !gate("fig4_quick", fig4_median, committed) {
            return ExitCode::FAILURE;
        }
        match committed_sweep {
            Some(committed) => {
                if !gate("sweep", sweep_median, committed) {
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("perf_report: {path} predates the sweep stage; skipping its gate"),
        }
        // The batched sweep's reason to exist: N points must stay well under
        // N independent runs. Gate the measured scaling directly.
        let scaling = sweep_median / sweep_point_median;
        if !scaling.is_finite() || scaling > SWEEP_SCALING_LIMIT {
            eprintln!(
                "perf_report: REGRESSION — {SWEEP_POINTS}-point sweep costs {scaling:.2}x a \
                 single point (limit {SWEEP_SCALING_LIMIT:.1}x): batching has stopped paying off"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "perf_report: sweep scaling {scaling:.2}x for {SWEEP_POINTS} points \
             (limit {SWEEP_SCALING_LIMIT:.1}x)"
        );
    }
    ExitCode::SUCCESS
}

/// The quick six-benchmark subset every stage works on.
fn quick_suite() -> Vec<Benchmark> {
    mcd_bench::selected_suite(true)
}

fn quick_traces(benches: &[Benchmark]) -> Vec<PackedTrace> {
    benches
        .iter()
        .map(|b| generate_packed(&b.program, &b.inputs.reference))
        .collect()
}

/// Runs one stage inside this (child) process and prints the measurement as a
/// single JSON line on stdout.
fn run_child(stage: &str) -> ExitCode {
    let start = Instant::now();
    match stage {
        "trace_gen" => {
            black_box(quick_traces(&quick_suite()));
        }
        "baseline_sim" => {
            let benches = quick_suite();
            let traces = quick_traces(&benches);
            let machine = MachineConfig::default();
            let start = Instant::now(); // exclude generation from the timing
            for trace in &traces {
                let sim = Simulator::new(machine.clone());
                black_box(sim.run(trace.iter(), &mut NullHooks, false).stats);
            }
            return emit_measurement(start);
        }
        "capture" => {
            let benches = quick_suite();
            let traces = quick_traces(&benches);
            let machine = MachineConfig::default();
            let pipeline = AnalysisPipeline::new(OfflineConfig::default());
            let start = Instant::now(); // exclude generation from the timing
            for trace in &traces {
                black_box(pipeline.analyze(trace, &machine));
            }
            return emit_measurement(start);
        }
        "fig4_quick" => {
            // A cold fig4 --quick: disabled cache, all three schemes.
            let config = EvaluationConfig {
                parallelism: 1,
                ..EvaluationConfig::default()
            }
            .with_slowdown(mcd_bench::HEADLINE_SLOWDOWN);
            let evaluator = Evaluator::builder().config(config).workers(1).build();
            let jobs = quick_suite().into_iter().map(EvalJob::new).collect();
            match evaluator.submit_all(jobs).collect() {
                Ok(evals) => {
                    black_box(evals);
                }
                Err(err) => {
                    eprintln!("perf_report: fig4_quick evaluation failed: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "sweep" => return run_sweep(SWEEP_POINTS),
        "sweep_point" => return run_sweep(1),
        other => {
            eprintln!("perf_report: unknown stage `{other}`");
            return ExitCode::FAILURE;
        }
    }
    emit_measurement(start)
}

/// A cold batched slowdown sweep over one benchmark: `points` evenly spaced
/// targets submitted as one [`EvalJob::batch`] group (off-line + profile,
/// cache disabled). With one point this is the per-configuration unit cost
/// the `sweep` stage's sublinearity is measured against.
fn run_sweep(points: usize) -> ExitCode {
    let bench = match mcd_dvfs::error::find_benchmark("adpcm decode") {
        Ok(bench) => bench,
        Err(err) => {
            eprintln!("perf_report: sweep benchmark unavailable: {err}");
            return ExitCode::FAILURE;
        }
    };
    let config = EvaluationConfig {
        parallelism: 1,
        ..EvaluationConfig::default()
    };
    let evaluator = Evaluator::builder().config(config).workers(1).build();
    let jobs: Vec<EvalJob> = (0..points)
        .map(|i| {
            EvalJob::new(bench.clone())
                .with_slowdown(0.02 + 0.012 * i as f64)
                .with_schemes([names::OFFLINE, names::PROFILE])
        })
        .collect();
    let batch = EvalJob::batch(jobs).expect("one benchmark, at least one point");
    let start = Instant::now();
    match evaluator.submit_batch(batch).collect() {
        Ok(evals) => {
            black_box(evals);
        }
        Err(err) => {
            eprintln!("perf_report: sweep evaluation failed: {err}");
            return ExitCode::FAILURE;
        }
    }
    emit_measurement(start)
}

fn emit_measurement(start: Instant) -> ExitCode {
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let rss_kb = peak_rss_kb().unwrap_or(0.0);
    println!("{{\"wall_ms\": {wall_ms:.3}, \"peak_rss_kb\": {rss_kb:.0}}}");
    let _ = std::io::stdout().flush();
    ExitCode::SUCCESS
}

/// Peak resident set size of this process in KB (Linux `VmHWM`; `None` where
/// procfs is unavailable).
fn peak_rss_kb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn run_stage_in_child(exe: &std::path::Path, stage: &str) -> Result<(f64, f64), String> {
    let output = Command::new(exe)
        .args(["--child", "--stage", stage])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .output()
        .map_err(|e| format!("spawn failed: {e}"))?;
    if !output.status.success() {
        return Err(format!("child exited with {}", output.status));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{'))
        .ok_or_else(|| "child produced no measurement".to_string())?;
    let wall = json_number(line, "wall_ms").ok_or("missing wall_ms")?;
    let rss = json_number(line, "peak_rss_kb").ok_or("missing peak_rss_kb")?;
    Ok((wall, rss))
}

fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    values[values.len() / 2]
}

/// Minimal extraction of `"field": <number>` from a flat JSON object line.
fn json_number(json: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extraction of `stages.<stage>.<field>` from a committed report.
fn json_stage_field(json: &str, stage: &str, field: &str) -> Option<f64> {
    let at = json.find(&format!("\"{stage}\""))?;
    json_number(&json[at..], field)
}
