//! `perf_report` — the dependency-free macro-benchmark harness behind the
//! repository's tracked performance trajectory (`BENCH_*.json`).
//!
//! The harness times ten stages of the simulator's hot data path and the
//! evaluation service, each in a fresh child process (re-executing this
//! binary with `--child --stage X`) so per-stage peak RSS is meaningful and
//! every measurement is cold:
//!
//! * `trace_gen`     — packed trace generation for the quick suite,
//! * `baseline_sim`  — full-speed baseline simulation of those traces,
//! * `capture`       — the streaming windowed capture + shaker analysis
//!   (off-line pipeline stages 1–2),
//! * `fig4_quick`    — a complete cold `fig4 --quick` evaluation (baseline +
//!   off-line + on-line + profile on the six-benchmark subset, cache
//!   disabled),
//! * `sweep_point`   — one cold batched evaluation of a single slowdown
//!   point (off-line + profile, cache disabled),
//! * `sweep`         — the same evaluation over ten slowdown points as *one*
//!   batched job group: one capture/training pass, ten re-thresholded
//!   configuration lanes per trace pass,
//! * `load_serial`   — the mixed-tier load-test stream (three benchmarks ×
//!   thirty-two slowdown points, off-line + profile) submitted as 96
//!   independent jobs, with queue/completion latency percentiles and a
//!   bit-exact metrics digest,
//! * `load_batched`  — the identical stream as three batched job groups
//!   (one per benchmark) — the high-throughput submission path,
//! * `fault_off_overhead` — the `load_batched` workload with a *disabled*
//!   fault plan explicitly installed in the evaluator: the fault-injection
//!   hooks are runtime-gated, so this must price out within noise of
//!   `load_batched` itself (the hooks' disabled path is free),
//! * `shared_cache`  — two concurrent cold evaluator processes on one
//!   shared cache directory, reporting any duplicate artifact writes (the
//!   single-writer gate).
//!
//! The parent runs each stage `--iters` times (default 3), reports median
//! wall-clock and peak RSS, and writes the JSON report (default
//! `BENCH_8.json`, with a `host` fingerprint — CPU model, core count,
//! kernel — in the header; see the README's "Performance" section for the
//! schema). `--check <file>` compares the measured `fig4_quick`, `sweep`
//! and `load_batched` medians against a previously committed report and
//! exits non-zero on a regression beyond `--tolerance` (default 0.25, i.e.
//! 25%); it also asserts the sweep's sublinear scaling (ten batched points
//! under 4× the one-point cost), the load test's batched-over-serial
//! speedup (at least 4×), the serial/batched/fault-off digest equality
//! (bit-identical per-job metrics), the disabled fault hooks' overhead
//! ceiling, and zero duplicate writes in the shared-cache stage — the CI
//! bench smoke gates.

use mcd_bench::loadtest;
use mcd_dvfs::artifact::ArtifactCache;
use mcd_dvfs::evaluation::EvaluationConfig;
use mcd_dvfs::offline::OfflineConfig;
use mcd_dvfs::pipeline::AnalysisPipeline;
use mcd_dvfs::scheme::names;
use mcd_dvfs::service::{EvalJob, Evaluator};
use mcd_dvfs::FaultPlan;
use mcd_sim::config::MachineConfig;
use mcd_sim::simulator::{NullHooks, Simulator};
use mcd_sim::trace::PackedTrace;
use mcd_workloads::generator::generate_packed;
use mcd_workloads::suite::Benchmark;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::io::Write;
use std::process::{Command, ExitCode, Stdio};
use std::time::Instant;

/// Report schema version (bump on layout changes).
const SCHEMA: u32 = 4;

const STAGES: [&str; 10] = [
    "trace_gen",
    "baseline_sim",
    "capture",
    "fig4_quick",
    "sweep_point",
    "sweep",
    "load_serial",
    "load_batched",
    "fault_off_overhead",
    "shared_cache",
];

/// The sweep stages' slowdown points: `SWEEP_POINTS` evenly spaced targets
/// (`sweep_point` times only the first).
const SWEEP_POINTS: usize = 10;

/// The sublinearity gate: the ten-point batched sweep must cost less than
/// this multiple of the one-point run.
const SWEEP_SCALING_LIMIT: f64 = 4.0;

/// Slowdown points per benchmark in the `load_*` stages' stream.
const LOAD_POINTS: usize = 32;

/// Points per benchmark in the `shared_cache` stage's worker stream (small:
/// the stage measures locking, not lane throughput).
const SHARED_CACHE_POINTS: usize = 3;

/// Concurrent worker processes in the `shared_cache` stage.
const SHARED_CACHE_PROCS: usize = 2;

/// The load-test gate: batched submission must be at least this many times
/// faster than serial submission of the identical stream.
const LOAD_SPEEDUP_FLOOR: f64 = 4.0;

/// The fault-hook gate: the `load_batched` workload with a disabled fault
/// plan installed must cost at most this multiple of plain `load_batched`.
/// The hooks' disabled path is one relaxed boolean load, so anything beyond
/// run-to-run noise is a regression.
const FAULT_OFF_OVERHEAD_LIMIT: f64 = 1.15;

/// Extra per-iteration fields the `load_*` stages report (medians land in
/// the stage's JSON object alongside the wall/RSS numbers).
const LOAD_EXTRA_FIELDS: [&str; 7] = [
    "throughput_jps",
    "queue_p50_ms",
    "queue_p95_ms",
    "queue_p99_ms",
    "completion_p50_ms",
    "completion_p95_ms",
    "completion_p99_ms",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if flag("--child") {
        let stage = value("--stage").unwrap_or_default();
        return run_child(&stage);
    }

    let iters: usize = value("--iters")
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let out = value("--out").unwrap_or_else(|| "BENCH_8.json".to_string());
    let check = value("--check");
    let tolerance: f64 = value("--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    // Read the committed baselines *before* measuring (the fresh report may
    // overwrite the same file). A committed report predating a stage simply
    // skips that comparison.
    let (committed_fig4, committed_sweep, committed_load) = match &check {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(json) => (
                json_stage_field(&json, "fig4_quick", "median_wall_ms"),
                json_stage_field(&json, "sweep", "median_wall_ms"),
                json_stage_field(&json, "load_batched", "median_wall_ms"),
            ),
            Err(err) => {
                eprintln!("perf_report: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        None => (None, None, None),
    };

    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(err) => {
            eprintln!("perf_report: cannot locate own executable: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut stages_json = Vec::new();
    let mut medians: BTreeMap<&str, f64> = BTreeMap::new();
    let mut digests: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut duplicate_writes = 0.0f64;
    for stage in STAGES {
        let mut walls = Vec::new();
        let mut rss = Vec::new();
        let mut lines = Vec::new();
        for iter in 0..iters {
            eprintln!("perf_report: {stage} iteration {}/{iters} ...", iter + 1);
            match run_stage_in_child(&exe, stage) {
                Ok((wall_ms, rss_kb, line)) => {
                    walls.push(wall_ms);
                    rss.push(rss_kb);
                    lines.push(line);
                }
                Err(err) => {
                    eprintln!("perf_report: stage {stage} failed: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let wall_median = median(&mut walls.clone());
        let rss_median = median(&mut rss.clone());
        medians.insert(stage, wall_median);
        eprintln!(
            "perf_report: {stage:<13} median {:>9.1} ms  peak-rss {:>8.0} KB",
            wall_median, rss_median
        );
        // Stage-specific extras: the load stages carry a metrics digest and
        // latency percentiles, the shared-cache stage its duplicate-write
        // count.
        let mut extra = String::new();
        if stage == "load_serial" || stage == "load_batched" || stage == "fault_off_overhead" {
            let stage_digests: Vec<String> = lines
                .iter()
                .filter_map(|l| json_string(l, "digest"))
                .collect();
            if let Some(first) = stage_digests.first() {
                extra.push_str(&format!(",\n      \"digest\": \"{first}\""));
            }
            digests.insert(stage, stage_digests);
            for field in LOAD_EXTRA_FIELDS {
                let mut values: Vec<f64> =
                    lines.iter().filter_map(|l| json_number(l, field)).collect();
                if !values.is_empty() {
                    extra.push_str(&format!(",\n      \"{field}\": {:.3}", median(&mut values)));
                }
            }
        }
        if stage == "shared_cache" {
            let worst = lines
                .iter()
                .filter_map(|l| json_number(l, "duplicate_writes"))
                .fold(0.0f64, f64::max);
            duplicate_writes = worst;
            extra.push_str(&format!(",\n      \"duplicate_writes\": {worst:.0}"));
            let mut waits: Vec<f64> = lines
                .iter()
                .filter_map(|l| json_number(l, "lock_waits"))
                .collect();
            if !waits.is_empty() {
                extra.push_str(&format!(
                    ",\n      \"lock_waits\": {:.0}",
                    median(&mut waits)
                ));
            }
        }
        stages_json.push(format!(
            "    \"{stage}\": {{\n      \"median_wall_ms\": {wall_median:.3},\n      \
             \"peak_rss_kb\": {rss_median:.0},\n      \"runs_wall_ms\": [{}],\n      \
             \"runs_peak_rss_kb\": [{}]{extra}\n    }}",
            walls
                .iter()
                .map(|w| format!("{w:.3}"))
                .collect::<Vec<_>>()
                .join(", "),
            rss.iter()
                .map(|r| format!("{r:.0}"))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }

    let (cpu, cores, kernel) = host_fingerprint();
    let json = format!(
        "{{\n  \"schema\": {SCHEMA},\n  \"bench\": \"mcd perf_report\",\n  \"mode\": \"quick\",\n  \
         \"iterations\": {iters},\n  \"host\": {{\n    \"cpu\": \"{cpu}\",\n    \
         \"cores\": {cores},\n    \"kernel\": \"{kernel}\"\n  }},\n  \"stages\": {{\n{}\n  }}\n}}\n",
        stages_json.join(",\n")
    );
    if let Err(err) = std::fs::write(&out, &json) {
        eprintln!("perf_report: cannot write {out}: {err}");
        return ExitCode::FAILURE;
    }
    eprintln!("perf_report: wrote {out}");

    if let Some(path) = check {
        let stage_median = |stage: &str| medians.get(stage).copied().unwrap_or(f64::NAN);
        let gate = |stage: &str, measured: f64, committed: f64| -> bool {
            let limit = committed * (1.0 + tolerance);
            if measured > limit {
                eprintln!(
                    "perf_report: REGRESSION — {stage} median {measured:.1} ms exceeds \
                     committed {committed:.1} ms by more than {:.0}% (limit {limit:.1} ms)",
                    tolerance * 100.0
                );
                return false;
            }
            eprintln!(
                "perf_report: {stage} median {measured:.1} ms within {:.0}% of committed \
                 {committed:.1} ms",
                tolerance * 100.0
            );
            true
        };
        let Some(committed) = committed_fig4 else {
            eprintln!("perf_report: {path} has no fig4_quick median to check against");
            return ExitCode::FAILURE;
        };
        if !gate("fig4_quick", stage_median("fig4_quick"), committed) {
            return ExitCode::FAILURE;
        }
        match committed_sweep {
            Some(committed) => {
                if !gate("sweep", stage_median("sweep"), committed) {
                    return ExitCode::FAILURE;
                }
            }
            None => eprintln!("perf_report: {path} predates the sweep stage; skipping its gate"),
        }
        match committed_load {
            Some(committed) => {
                if !gate("load_batched", stage_median("load_batched"), committed) {
                    return ExitCode::FAILURE;
                }
            }
            None => {
                eprintln!("perf_report: {path} predates the load stages; skipping their gate")
            }
        }
        // The batched sweep's reason to exist: N points must stay well under
        // N independent runs. Gate the measured scaling directly.
        let scaling = stage_median("sweep") / stage_median("sweep_point");
        if !scaling.is_finite() || scaling > SWEEP_SCALING_LIMIT {
            eprintln!(
                "perf_report: REGRESSION — {SWEEP_POINTS}-point sweep costs {scaling:.2}x a \
                 single point (limit {SWEEP_SCALING_LIMIT:.1}x): batching has stopped paying off"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "perf_report: sweep scaling {scaling:.2}x for {SWEEP_POINTS} points \
             (limit {SWEEP_SCALING_LIMIT:.1}x)"
        );
        // The load test's reason to exist: batched submission of the mixed
        // stream must beat serial submission by the floor, with bit-identical
        // per-job metrics.
        let speedup = stage_median("load_serial") / stage_median("load_batched");
        if !speedup.is_finite() || speedup < LOAD_SPEEDUP_FLOOR {
            eprintln!(
                "perf_report: REGRESSION — batched load stream is only {speedup:.2}x serial \
                 (floor {LOAD_SPEEDUP_FLOOR:.1}x): the batching fast path has degraded"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "perf_report: load speedup {speedup:.2}x batched over serial \
             (floor {LOAD_SPEEDUP_FLOOR:.1}x)"
        );
        // The fault hooks' reason to be runtime-gated: with the plan
        // disabled, the batched stream must cost the same as without any
        // plan installed at all.
        let overhead = stage_median("fault_off_overhead") / stage_median("load_batched");
        if !overhead.is_finite() || overhead > FAULT_OFF_OVERHEAD_LIMIT {
            eprintln!(
                "perf_report: REGRESSION — disabled fault hooks cost {overhead:.2}x the \
                 plain batched stream (limit {FAULT_OFF_OVERHEAD_LIMIT:.2}x): the \
                 disabled path is no longer free"
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "perf_report: fault-off overhead {overhead:.2}x of load_batched \
             (limit {FAULT_OFF_OVERHEAD_LIMIT:.2}x)"
        );
        let all_digests: Vec<&String> = digests.values().flatten().collect();
        match all_digests.first() {
            Some(first) if all_digests.iter().all(|d| d == first) => {
                eprintln!(
                    "perf_report: load digests identical across serial/batched/fault-off \
                     runs ({first})"
                );
            }
            Some(_) => {
                eprintln!(
                    "perf_report: REGRESSION — load stream digests differ across runs: \
                     batched metrics are not bit-identical to serial metrics"
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("perf_report: REGRESSION — load stages reported no metrics digest");
                return ExitCode::FAILURE;
            }
        }
        if duplicate_writes > 0.0 {
            eprintln!(
                "perf_report: REGRESSION — shared-cache stage recorded {duplicate_writes:.0} \
                 duplicate write(s): concurrent processes recomputed a published key"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("perf_report: shared-cache single-writer holds (0 duplicate writes)");
    }
    ExitCode::SUCCESS
}

/// The quick six-benchmark subset every stage works on.
fn quick_suite() -> Vec<Benchmark> {
    mcd_bench::selected_suite(true)
}

fn quick_traces(benches: &[Benchmark]) -> Vec<PackedTrace> {
    benches
        .iter()
        .map(|b| generate_packed(&b.program, &b.inputs.reference))
        .collect()
}

/// Runs one stage inside this (child) process and prints the measurement as a
/// single JSON line on stdout.
fn run_child(stage: &str) -> ExitCode {
    let start = Instant::now();
    match stage {
        "trace_gen" => {
            black_box(quick_traces(&quick_suite()));
        }
        "baseline_sim" => {
            let benches = quick_suite();
            let traces = quick_traces(&benches);
            let machine = MachineConfig::default();
            let start = Instant::now(); // exclude generation from the timing
            for trace in &traces {
                let sim = Simulator::new(machine.clone());
                black_box(sim.run(trace.iter(), &mut NullHooks, false).stats);
            }
            return emit_measurement(start, "");
        }
        "capture" => {
            let benches = quick_suite();
            let traces = quick_traces(&benches);
            let machine = MachineConfig::default();
            let pipeline = AnalysisPipeline::new(OfflineConfig::default());
            let start = Instant::now(); // exclude generation from the timing
            for trace in &traces {
                black_box(pipeline.analyze(trace, &machine));
            }
            return emit_measurement(start, "");
        }
        "fig4_quick" => {
            // A cold fig4 --quick: disabled cache, all three schemes.
            let config = EvaluationConfig {
                parallelism: 1,
                ..EvaluationConfig::default()
            }
            .with_slowdown(mcd_bench::HEADLINE_SLOWDOWN);
            let evaluator = Evaluator::builder().config(config).workers(1).build();
            let jobs = quick_suite().into_iter().map(EvalJob::new).collect();
            match evaluator.submit_all(jobs).collect() {
                Ok(evals) => {
                    black_box(evals);
                }
                Err(err) => {
                    eprintln!("perf_report: fig4_quick evaluation failed: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "sweep" => return run_sweep(SWEEP_POINTS),
        "sweep_point" => return run_sweep(1),
        "load_serial" => return run_load(LoadMode::Serial),
        "load_batched" => return run_load(LoadMode::Batched),
        "fault_off_overhead" => return run_load(LoadMode::BatchedFaultOff),
        "shared_cache" => return run_shared_cache(),
        "shared_cache_worker" => return run_shared_cache_worker(),
        other => {
            eprintln!("perf_report: unknown stage `{other}`");
            return ExitCode::FAILURE;
        }
    }
    emit_measurement(start, "")
}

/// A cold batched slowdown sweep over one benchmark: `points` evenly spaced
/// targets submitted as one [`EvalJob::batch`] group (off-line + profile,
/// cache disabled). With one point this is the per-configuration unit cost
/// the `sweep` stage's sublinearity is measured against.
fn run_sweep(points: usize) -> ExitCode {
    let bench = match mcd_dvfs::error::find_benchmark("adpcm decode") {
        Ok(bench) => bench,
        Err(err) => {
            eprintln!("perf_report: sweep benchmark unavailable: {err}");
            return ExitCode::FAILURE;
        }
    };
    let config = EvaluationConfig {
        parallelism: 1,
        ..EvaluationConfig::default()
    };
    let evaluator = Evaluator::builder().config(config).workers(1).build();
    let jobs: Vec<EvalJob> = (0..points)
        .map(|i| {
            EvalJob::new(bench.clone())
                .with_slowdown(0.02 + 0.012 * i as f64)
                .with_schemes([names::OFFLINE, names::PROFILE])
        })
        .collect();
    let batch = EvalJob::batch(jobs).expect("one benchmark, at least one point");
    let start = Instant::now();
    match evaluator.submit_batch(batch).collect() {
        Ok(evals) => {
            black_box(evals);
        }
        Err(err) => {
            eprintln!("perf_report: sweep evaluation failed: {err}");
            return ExitCode::FAILURE;
        }
    }
    emit_measurement(start, "")
}

/// Which submission path a `load_*` stage exercises.
enum LoadMode {
    Serial,
    Batched,
    /// Batched with a disabled [`FaultPlan`] explicitly installed — the
    /// `fault_off_overhead` stage's subject.
    BatchedFaultOff,
}

/// The load-test stream (cold cache) under serial or batched submission,
/// reporting the metrics digest and latency percentiles alongside the
/// timing.
fn run_load(mode: LoadMode) -> ExitCode {
    let jobs = match loadtest::stream_jobs(LOAD_POINTS) {
        Ok(jobs) => jobs,
        Err(err) => {
            eprintln!("perf_report: load stream unavailable: {err}");
            return ExitCode::FAILURE;
        }
    };
    let config = loadtest::cold_config();
    let start = Instant::now();
    let report = match mode {
        LoadMode::Serial => loadtest::run_serial(&config, jobs),
        LoadMode::Batched => loadtest::run_batched(&config, jobs),
        LoadMode::BatchedFaultOff => loadtest::run_batched_with_faults(
            &config,
            jobs,
            std::sync::Arc::new(FaultPlan::disabled()),
        ),
    };
    let report = match report {
        Ok(report) => report,
        Err(err) => {
            eprintln!("perf_report: load stage failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    let extra = format!(
        ", \"digest\": \"{:016x}\", \"throughput_jps\": {:.3}, \"queue_p50_ms\": {:.3}, \
         \"queue_p95_ms\": {:.3}, \"queue_p99_ms\": {:.3}, \"completion_p50_ms\": {:.3}, \
         \"completion_p95_ms\": {:.3}, \"completion_p99_ms\": {:.3}",
        report.digest,
        report.throughput(),
        report.queue.p50_ms,
        report.queue.p95_ms,
        report.queue.p99_ms,
        report.completion.p50_ms,
        report.completion.p95_ms,
        report.completion.p99_ms,
    );
    emit_measurement(start, &extra)
}

/// Two concurrent cold re-executions of this binary (`shared_cache_worker`)
/// on one fresh cache directory; reports the concurrent phase's wall time
/// plus the duplicate-write count the single-writer gate asserts on.
fn run_shared_cache() -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(err) => {
            eprintln!("perf_report: cannot locate own executable: {err}");
            return ExitCode::FAILURE;
        }
    };
    let dir = std::env::temp_dir().join(format!("mcd-perf-shared-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let start = Instant::now();
    let mut children = Vec::new();
    for _ in 0..SHARED_CACHE_PROCS {
        match Command::new(&exe)
            .args(["--child", "--stage", "shared_cache_worker"])
            .env("MCD_CACHE_DIR", &dir)
            .env_remove("MCD_NO_CACHE")
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
        {
            Ok(child) => children.push(child),
            Err(err) => {
                eprintln!("perf_report: cannot spawn shared-cache worker: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    for mut child in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("perf_report: shared-cache worker exited with {status}");
                return ExitCode::FAILURE;
            }
            Err(err) => {
                eprintln!("perf_report: cannot wait for shared-cache worker: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Per kind, recorded writes beyond the distinct files on disk are
    // duplicate computations of a shared key.
    let cache = ArtifactCache::new(&dir);
    let mut files: BTreeMap<String, u64> = BTreeMap::new();
    for entry in cache.entries() {
        *files.entry(entry.kind).or_default() += 1;
    }
    let recorded: BTreeMap<String, _> = ArtifactCache::aggregated_kind_stats(&dir)
        .into_iter()
        .collect();
    let duplicates: u64 = files
        .iter()
        .map(|(kind, count)| {
            recorded
                .get(kind)
                .map(|s| s.writes)
                .unwrap_or(0)
                .saturating_sub(*count)
        })
        .sum();
    let lock_waits = ArtifactCache::aggregated_stats(&dir).lock_waits;
    let _ = std::fs::remove_dir_all(&dir);
    let extra = format!(", \"duplicate_writes\": {duplicates}, \"lock_waits\": {lock_waits}");
    emit_measurement(start, &extra)
}

/// One cold batched pass over a small load stream against the cache
/// directory `shared_cache` set up in the environment.
fn run_shared_cache_worker() -> ExitCode {
    let jobs = match loadtest::stream_jobs(SHARED_CACHE_POINTS) {
        Ok(jobs) => jobs,
        Err(err) => {
            eprintln!("perf_report: shared-cache stream unavailable: {err}");
            return ExitCode::FAILURE;
        }
    };
    let cache = std::sync::Arc::new(ArtifactCache::from_env());
    let config = loadtest::cold_config().with_cache(cache.clone());
    let start = Instant::now();
    if let Err(err) = loadtest::run_batched(&config, jobs) {
        eprintln!("perf_report: shared-cache worker failed: {err}");
        return ExitCode::FAILURE;
    }
    cache.flush_stats_log();
    emit_measurement(start, "")
}

fn emit_measurement(start: Instant, extra: &str) -> ExitCode {
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let rss_kb = peak_rss_kb().unwrap_or(0.0);
    println!("{{\"wall_ms\": {wall_ms:.3}, \"peak_rss_kb\": {rss_kb:.0}{extra}}}");
    let _ = std::io::stdout().flush();
    ExitCode::SUCCESS
}

/// Peak resident set size of this process in KB (Linux `VmHWM`; `None` where
/// procfs is unavailable).
fn peak_rss_kb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The machine this report was measured on: CPU model (Linux
/// `/proc/cpuinfo`), logical core count, and kernel release — enough to tell
/// two hosts' trajectories apart when comparing committed reports.
fn host_fingerprint() -> (String, usize, String) {
    let escape = |s: String| s.replace('\\', "\\\\").replace('"', "\\\"");
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|v| v.trim().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    (escape(cpu), cores, escape(kernel))
}

fn run_stage_in_child(exe: &std::path::Path, stage: &str) -> Result<(f64, f64, String), String> {
    let output = Command::new(exe)
        .args(["--child", "--stage", stage])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .output()
        .map_err(|e| format!("spawn failed: {e}"))?;
    if !output.status.success() {
        return Err(format!("child exited with {}", output.status));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.trim_start().starts_with('{'))
        .ok_or_else(|| "child produced no measurement".to_string())?;
    let wall = json_number(line, "wall_ms").ok_or("missing wall_ms")?;
    let rss = json_number(line, "peak_rss_kb").ok_or("missing peak_rss_kb")?;
    Ok((wall, rss, line.to_string()))
}

fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    values[values.len() / 2]
}

/// Minimal extraction of `"field": <number>` from a flat JSON object line.
fn json_number(json: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Minimal extraction of `"field": "<string>"` from a flat JSON object line.
fn json_string(json: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extraction of `stages.<stage>.<field>` from a committed report.
fn json_stage_field(json: &str, stage: &str, field: &str) -> Option<f64> {
    let at = json.find(&format!("\"{stage}\""))?;
    json_number(&json[at..], field)
}
