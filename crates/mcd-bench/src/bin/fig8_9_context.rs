//! Figures 8 and 9: sensitivity of performance degradation and energy savings
//! to the definition of calling context, for the benchmarks where the choice
//! makes a visible difference (mpeg2 decode, epic encode, plus the loop-heavy
//! applu and art).
//!
//! One [`Evaluator`] serves the whole study: each (benchmark, policy) point
//! is a job restricted to the profile scheme, and the per-benchmark reference
//! trace and baseline are memoized across the six policies.

use mcd_bench::{default_config, format, report_cache, run_main, Options, SuiteSelection};
use mcd_dvfs::error::find_benchmark;
use mcd_dvfs::scheme::names;
use mcd_dvfs::service::{EvalJob, Evaluator};
use mcd_profiling::context::ContextPolicy;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        let options = Options::parse();
        // This study runs a fixed benchmark list (the programs where the
        // context policy visibly matters), so a tier selection cannot apply;
        // still validate the value, and say so instead of silently ignoring.
        options.suite_selection(SuiteSelection::Paper)?;
        if options.suite.is_some() {
            eprintln!("  note: --suite/MCD_SUITE ignored — this study uses a fixed benchmark list");
        }
        let bench_names = [
            "mpeg2 decode",
            "epic encode",
            "applu",
            "art",
            "adpcm decode",
            "gsm decode",
        ];
        let policies = ContextPolicy::ALL;

        let evaluator = Evaluator::builder()
            .config(default_config(&options, false))
            .build();
        // One batch per benchmark (a printed row), all submitted up front.
        let mut rows = Vec::new();
        for name in bench_names {
            let bench = find_benchmark(name)?;
            let jobs = policies
                .iter()
                .map(|&policy| {
                    EvalJob::new(bench.clone())
                        .with_policy(policy)
                        .with_schemes([names::PROFILE])
                })
                .collect();
            rows.push((bench.name, evaluator.submit_all(jobs)));
        }

        println!("Figures 8 and 9. Sensitivity to the definition of calling context.");
        println!("(performance degradation / energy savings per policy)");
        println!();
        let mut cols: Vec<(&str, usize)> = vec![("Benchmark", 16)];
        for p in &policies {
            cols.push((p.abbreviation(), 15));
        }
        format::header(&cols);

        for (name, stream) in rows {
            let evals = stream.collect()?;
            print!("{name:>16}");
            for eval in &evals {
                let metrics = eval.metrics(names::PROFILE)?;
                print!(
                    "  {:>5.1}%/{:>5.1}%",
                    metrics.performance_degradation * 100.0,
                    metrics.energy_savings * 100.0
                );
            }
            println!();
        }
        let memo = evaluator.memo_stats();
        eprintln!(
            "  baselines: {} computed, {} reused across {} jobs",
            memo.misses,
            memo.hits,
            memo.lookups()
        );
        report_cache();
        Ok(())
    })
}
