//! Figures 8 and 9: sensitivity of performance degradation and energy savings
//! to the definition of calling context, for the benchmarks where the choice
//! makes a visible difference (mpeg2 decode, epic encode, plus the loop-heavy
//! applu and art).

use mcd_bench::{default_config, format};
use mcd_dvfs::evaluation::{evaluate_profile, run_baseline};
use mcd_profiling::context::ContextPolicy;
use mcd_workloads::suite;

fn main() {
    let names = ["mpeg2 decode", "epic encode", "applu", "art", "adpcm decode", "gsm decode"];
    let policies = ContextPolicy::ALL;

    println!("Figures 8 and 9. Sensitivity to the definition of calling context.");
    println!("(performance degradation / energy savings per policy)");
    println!();
    let mut cols: Vec<(&str, usize)> = vec![("Benchmark", 16)];
    for p in &policies {
        cols.push((p.abbreviation(), 15));
    }
    format::header(&cols);

    for name in names {
        let bench = suite::benchmark(name).expect("benchmark exists");
        let machine = default_config(false).machine;
        let baseline = run_baseline(&bench, &machine);
        print!("{:>16}", bench.name);
        for policy in policies {
            let config = default_config(false).with_policy(policy);
            let result = evaluate_profile(&bench, &config, &baseline);
            print!(
                "  {:>5.1}%/{:>5.1}%",
                result.metrics.performance_degradation * 100.0,
                result.metrics.energy_savings * 100.0
            );
        }
        println!();
    }
}
