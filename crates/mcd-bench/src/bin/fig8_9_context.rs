//! Figures 8 and 9: sensitivity of performance degradation and energy savings
//! to the definition of calling context, for the benchmarks where the choice
//! makes a visible difference (mpeg2 decode, epic encode, plus the loop-heavy
//! applu and art).

use mcd_bench::{default_config, format, report_cache, run_main};
use mcd_dvfs::error::find_benchmark;
use mcd_dvfs::evaluation::{evaluate_scheme, run_trace_baseline};
use mcd_dvfs::scheme::ProfileScheme;
use mcd_dvfs::DvfsScheme;
use mcd_profiling::context::ContextPolicy;
use mcd_workloads::generator::generate_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        let names = [
            "mpeg2 decode",
            "epic encode",
            "applu",
            "art",
            "adpcm decode",
            "gsm decode",
        ];
        let policies = ContextPolicy::ALL;

        println!("Figures 8 and 9. Sensitivity to the definition of calling context.");
        println!("(performance degradation / energy savings per policy)");
        println!();
        let mut cols: Vec<(&str, usize)> = vec![("Benchmark", 16)];
        for p in &policies {
            cols.push((p.abbreviation(), 15));
        }
        format::header(&cols);

        for name in names {
            let bench = find_benchmark(name)?;
            let machine = default_config(false).machine;
            let reference = generate_trace(&bench.program, &bench.inputs.reference);
            let baseline = run_trace_baseline(&reference, &machine);
            print!("{:>16}", bench.name);
            for policy in policies {
                let mut scheme = ProfileScheme::default();
                scheme.configure(&default_config(false).with_policy(policy))?;
                let result = evaluate_scheme(&bench, &machine, &reference, &scheme, &baseline)?;
                print!(
                    "  {:>5.1}%/{:>5.1}%",
                    result.metrics.performance_degradation * 100.0,
                    result.metrics.energy_savings * 100.0
                );
            }
            println!();
        }
        report_cache();
        Ok(())
    })
}
