//! Figure 13 (extension, not in the paper): all four reconfiguration schemes
//! on the second workload tier — the server-style request-loop and
//! bursty/interactive benchmarks.
//!
//! The paper evaluates only batch programs; this figure asks whether the
//! schemes' relative ranking survives request-loop and idle–burst phase
//! structure. Defaults to the whole second tier (`--suite tier2`); use
//! `--suite server` or `--suite interactive` for one half, or `--suite all`
//! to put the paper's benchmarks alongside. `--quick` keeps all six
//! second-tier benchmarks (the tier is already small).

use mcd_bench::{
    default_config, evaluate_all, print_metric_table, report_cache, run_main, selected_benchmarks,
    Metric, Options, SuiteSelection,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        let options = Options::parse();
        let benches = selected_benchmarks(&options, SuiteSelection::Tier2)?;
        let config = default_config(&options, true);
        let evals = evaluate_all(&benches, &config)?;
        for (title, metric) in [
            (
                "Figure 13a. Server/interactive tier: performance degradation \
                 (relative to the MCD baseline).",
                Metric::Slowdown,
            ),
            (
                "Figure 13b. Server/interactive tier: energy savings.",
                Metric::EnergySavings,
            ),
            (
                "Figure 13c. Server/interactive tier: energy-delay improvement.",
                Metric::EnergyDelay,
            ),
        ] {
            print_metric_table(title, &evals, metric);
            println!();
        }
        report_cache();
        Ok(())
    })
}
