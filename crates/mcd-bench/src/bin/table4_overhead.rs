//! Table 4: static and dynamic reconfiguration/instrumentation points and the
//! estimated run-time overhead of the inserted code, for the L+F+C+P policy
//! (profiling on the training input, running on the reference input).

use mcd_profiling::call_tree::CallTree;
use mcd_profiling::candidates::LongRunningSet;
use mcd_profiling::context::ContextPolicy;
use mcd_profiling::edit::InstrumentationPlan;
use mcd_sim::config::MachineConfig;
use mcd_sim::simulator::{NullHooks, Simulator};
use mcd_workloads::generator::generate_trace;
use mcd_workloads::suite::suite;

fn main() {
    println!("Table 4. Static and dynamic reconfiguration and instrumentation points, and");
    println!("estimated run-time overhead for L+F+C+P.");
    println!();
    println!(
        "{:<16} {:>18} {:>22} {:>10} {:>12}",
        "Benchmark", "Static (rec/instr)", "Dynamic (rec/instr)", "Overhead", "Tables (KB)"
    );
    println!("{}", "-".repeat(84));

    let machine = MachineConfig::default();
    for bench in suite() {
        let train_trace = generate_trace(&bench.program, &bench.inputs.training);
        let ref_trace = generate_trace(&bench.program, &bench.inputs.reference);
        let tree = CallTree::build(&train_trace, ContextPolicy::LoopFuncSitePath);
        let lr = LongRunningSet::identify(&tree);
        let plan = InstrumentationPlan::new(tree, lr, ContextPolicy::LoopFuncSitePath);

        let mut tracker = plan.tracker();
        for item in &ref_trace {
            if let Some(m) = item.as_marker() {
                tracker.on_marker(m);
            }
        }
        let baseline = Simulator::new(machine.clone())
            .run(ref_trace.iter().copied(), &mut NullHooks, false)
            .stats;
        let overhead_fraction = tracker.overhead_cycles() / baseline.run_time.as_ns();

        println!(
            "{:<16} {:>8} {:>9} {:>10} {:>11} {:>9.2}% {:>11.1}",
            bench.name,
            plan.static_reconfiguration_points(),
            plan.static_instrumentation_points(),
            tracker.dynamic_reconfigurations(),
            tracker.dynamic_instrumentations(),
            overhead_fraction * 100.0,
            plan.lookup_table_bytes() as f64 / 1024.0,
        );
    }
}
