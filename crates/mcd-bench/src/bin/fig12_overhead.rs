//! Figure 12: number of static reconfiguration and instrumentation points, and
//! run-time instrumentation overhead, for each context policy, normalized to
//! L+F+C+P (averaged across the suite).

use mcd_bench::{run_main, selected_benchmarks, Options, SuiteSelection};
use mcd_dvfs::evaluation::Summary;
use mcd_profiling::call_tree::CallTree;
use mcd_profiling::candidates::LongRunningSet;
use mcd_profiling::context::ContextPolicy;
use mcd_profiling::edit::InstrumentationPlan;
use mcd_sim::config::MachineConfig;
use mcd_sim::simulator::Simulator;
use mcd_workloads::generator::generate_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(run)
}

fn run() -> Result<(), mcd_dvfs::error::McdError> {
    let benches = selected_benchmarks(&Options::parse(), SuiteSelection::Paper)?;
    let machine = MachineConfig::default();
    let policies = ContextPolicy::ALL;

    // Per policy: averaged static reconfig points, static instrumentation
    // points, and run-time overhead fraction.
    let mut reconfig_points = vec![Vec::new(); policies.len()];
    let mut instr_points = vec![Vec::new(); policies.len()];
    let mut overheads = vec![Vec::new(); policies.len()];

    for bench in &benches {
        eprintln!("  analysing {} ...", bench.name);
        let train_trace = generate_trace(&bench.program, &bench.inputs.training);
        let ref_trace = generate_trace(&bench.program, &bench.inputs.reference);
        for (pi, policy) in policies.iter().enumerate() {
            let tree = CallTree::build(&train_trace, *policy);
            let lr = LongRunningSet::identify(&tree);
            let plan = InstrumentationPlan::new(tree, lr, *policy);
            reconfig_points[pi].push(plan.static_reconfiguration_points() as f64);
            instr_points[pi].push(plan.static_instrumentation_points() as f64);

            // Run the reference input once per policy, charging only the
            // instrumentation overhead (no reconfiguration), to isolate the
            // instrumentation cost exactly as the paper does.
            let mut tracker = plan.tracker();
            let mut total_overhead = 0.0;
            for item in &ref_trace {
                if let Some(m) = item.as_marker() {
                    total_overhead += tracker.on_marker(m).overhead_cycles;
                }
            }
            // Overhead fraction of the baseline run time (in 1 GHz cycles = ns).
            let baseline = Simulator::new(machine.clone())
                .run(
                    ref_trace.iter().copied(),
                    &mut mcd_sim::simulator::NullHooks,
                    false,
                )
                .stats;
            overheads[pi].push(total_overhead / baseline.run_time.as_ns());
        }
    }

    println!("Figure 12. Static reconfiguration/instrumentation points and run-time");
    println!("overhead per context policy, normalized to L+F+C+P (suite average).");
    println!();
    println!(
        "{:<10} {:>16} {:>18} {:>16} {:>14}",
        "policy", "reconfig points", "instrum. points", "overhead (%)", "norm overhead"
    );
    println!("{}", "-".repeat(80));
    let mean = |values: &[f64]| Summary::of(values).mean;
    let base_overhead = mean(&overheads[0]).max(1e-12);
    for (pi, policy) in policies.iter().enumerate() {
        println!(
            "{:<10} {:>16.1} {:>18.1} {:>16.4} {:>14.3}",
            policy.abbreviation(),
            mean(&reconfig_points[pi]),
            mean(&instr_points[pi]),
            mean(&overheads[pi]) * 100.0,
            mean(&overheads[pi]) / base_overhead
        );
    }
    Ok(())
}
