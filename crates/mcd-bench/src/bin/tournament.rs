//! The controller tournament: every registered scheme (the paper's four plus
//! the controller zoo) across every selected suite tier, through one batched
//! `Evaluator`, reported as metric matrices plus per-tier and overall
//! rankings.
//!
//! ```text
//! tournament [--quick] [--suite <paper|server|interactive|tier2|all>]
//!            [--jobs N] [--no-cache]
//! ```
//!
//! Defaults to `--suite all` (paper + server + interactive); `--quick` keeps
//! the representative paper subset plus the whole second tier. The report
//! goes to stdout; cache (`mcd-cache: ...`) and batch (`mcd-batch: ...`)
//! counters go to stderr for the CI cold/warm smoke.

use mcd_bench::{
    default_config, report_cache, run_main, selected_benchmarks, tournament, Options,
    SuiteSelection,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        let options = Options::parse();
        let benches = selected_benchmarks(&options, SuiteSelection::All)?;
        let mut config = default_config(&options, true);
        config.include_zoo = true;
        let evals = tournament::run(&benches, &config)?;
        print!("{}", tournament::render(&evals));
        report_cache();
        Ok(())
    })
}
