//! Table 2: instruction windows simulated for the training and reference
//! input sets of every benchmark (scaled-down equivalents of the paper's
//! windows; see DESIGN.md §2).

use mcd_bench::format;
use mcd_workloads::suite::suite;

fn main() {
    println!("Table 2. Instruction windows for the training and reference input sets.");
    println!();
    format::header(&[("Benchmark", 16), ("Training", 28), ("Reference", 28)]);
    for bench in suite() {
        println!(
            "{:>16}  {:>28}  {:>28}",
            bench.name,
            bench.inputs.training.window_description(),
            bench.inputs.reference.window_description(),
        );
    }
}
