//! Figure 7: minimum, maximum and average slowdown, energy savings and
//! energy×delay improvement across the suite, for the global-DVS baseline and
//! the three MCD reconfiguration schemes.

use mcd_bench::{default_config, evaluate_all, quick_requested, selected_suite};
use mcd_dvfs::evaluation::Summary;

fn main() {
    let quick = quick_requested();
    let benches = selected_suite(quick);
    let config = default_config(true);
    let evals = evaluate_all(&benches, &config);

    let collect = |f: &dyn Fn(&mcd_dvfs::evaluation::BenchmarkEvaluation) -> Option<f64>| {
        let v: Vec<f64> = evals.iter().filter_map(f).collect();
        Summary::of(&v)
    };

    println!("Figure 7. Minimum, maximum and average slowdown, energy savings and");
    println!("energy-delay improvement (percent, relative to the MCD baseline).");
    println!();
    println!("{:<22} {:>8} {:>8} {:>8}", "series", "min", "avg", "max");
    println!("{}", "-".repeat(50));

    let rows: Vec<(&str, Summary)> = vec![
        ("slowdown: global", collect(&|e| e.global.as_ref().map(|g| g.metrics.performance_degradation))),
        ("slowdown: on-line", collect(&|e| Some(e.online.metrics.performance_degradation))),
        ("slowdown: off-line", collect(&|e| Some(e.offline.metrics.performance_degradation))),
        ("slowdown: L+F", collect(&|e| Some(e.profile.metrics.performance_degradation))),
        ("energy: global", collect(&|e| e.global.as_ref().map(|g| g.metrics.energy_savings))),
        ("energy: on-line", collect(&|e| Some(e.online.metrics.energy_savings))),
        ("energy: off-line", collect(&|e| Some(e.offline.metrics.energy_savings))),
        ("energy: L+F", collect(&|e| Some(e.profile.metrics.energy_savings))),
        ("energy-delay: global", collect(&|e| e.global.as_ref().map(|g| g.metrics.energy_delay_improvement))),
        ("energy-delay: on-line", collect(&|e| Some(e.online.metrics.energy_delay_improvement))),
        ("energy-delay: off-line", collect(&|e| Some(e.offline.metrics.energy_delay_improvement))),
        ("energy-delay: L+F", collect(&|e| Some(e.profile.metrics.energy_delay_improvement))),
    ];
    for (name, s) in rows {
        println!(
            "{:<22} {:>7.1}% {:>7.1}% {:>7.1}%",
            name,
            s.min * 100.0,
            s.mean * 100.0,
            s.max * 100.0
        );
    }
}
