//! Figure 7: minimum, maximum and average slowdown, energy savings and
//! energy×delay improvement across the suite, for every scheme in the
//! registry (global DVS included).

use mcd_bench::{
    default_config, evaluate_all, report_cache, run_main, selected_benchmarks, Metric, Options,
    SuiteSelection,
};
use mcd_dvfs::evaluation::Summary;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        let options = Options::parse();
        let benches = selected_benchmarks(&options, SuiteSelection::Paper)?;
        let config = default_config(&options, true);
        let evals = evaluate_all(&benches, &config)?;

        println!("Figure 7. Minimum, maximum and average slowdown, energy savings and");
        println!("energy-delay improvement (percent, relative to the MCD baseline).");
        println!();
        println!("{:<26} {:>8} {:>8} {:>8}", "series", "min", "avg", "max");
        println!("{}", "-".repeat(54));

        let scheme_labels: Vec<(String, String)> = evals
            .first()
            .map(|e| {
                e.schemes
                    .iter()
                    .map(|o| (o.name.clone(), o.label.clone()))
                    .collect()
            })
            .unwrap_or_default();

        for (series, metric) in [
            ("slowdown", Metric::Slowdown),
            ("energy", Metric::EnergySavings),
            ("energy-delay", Metric::EnergyDelay),
        ] {
            for (name, label) in &scheme_labels {
                let values: Vec<f64> = evals
                    .iter()
                    .filter_map(|e| e.result(name).map(|r| metric.of(&r.metrics)))
                    .collect();
                let s = Summary::of(&values);
                println!(
                    "{:<26} {:>7.1}% {:>7.1}% {:>7.1}%",
                    format!("{series}: {label}"),
                    s.min * 100.0,
                    s.mean * 100.0,
                    s.max * 100.0
                );
            }
        }
        report_cache();
        Ok(())
    })
}
