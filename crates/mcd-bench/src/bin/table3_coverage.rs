//! Table 3: number of long-running (reconfiguration) nodes and total call-tree
//! nodes when profiling with the training versus the reference input, the
//! nodes common to both, and the coverage fractions — under the most
//! aggressive context definition (L+F+C+P).

use mcd_profiling::call_tree::CallTree;
use mcd_profiling::candidates::LongRunningSet;
use mcd_profiling::context::ContextPolicy;
use mcd_profiling::coverage::CoverageReport;
use mcd_workloads::generator::generate_trace;
use mcd_workloads::suite::suite;

fn main() {
    println!("Table 3. Reconfiguration nodes / total call-tree nodes when profiling with");
    println!("the training and reference input sets (L+F+C+P).");
    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>14}",
        "Benchmark", "TRAIN", "REF", "Common", "Coverage"
    );
    println!("{}", "-".repeat(72));

    for bench in suite() {
        let train_trace = generate_trace(&bench.program, &bench.inputs.training);
        let ref_trace = generate_trace(&bench.program, &bench.inputs.reference);
        let train_tree = CallTree::build(&train_trace, ContextPolicy::LoopFuncSitePath);
        let ref_tree = CallTree::build(&ref_trace, ContextPolicy::LoopFuncSitePath);
        let train_lr = LongRunningSet::identify(&train_tree);
        let ref_lr = LongRunningSet::identify(&ref_tree);
        let report = CoverageReport::compare(&train_tree, &train_lr, &ref_tree, &ref_lr);
        println!(
            "{:<16} {:>5} {:>5} {:>6} {:>5} {:>6} {:>5} {:>7.2} {:>6.2}",
            bench.name,
            report.train_long_running,
            report.train_total,
            report.reference_long_running,
            report.reference_total,
            report.common_long_running,
            report.common_total,
            report.long_running_coverage(),
            report.total_coverage(),
        );
    }
}
