//! Inspect the artifact cache: entries, sizes, and accumulated hit/miss
//! counters.
//!
//! The cache directory is resolved exactly as the figure binaries resolve it
//! (`MCD_CACHE_DIR`, default `.mcd-cache/`). Hit/miss counters are aggregated
//! from the `stats.log` snapshots the figure binaries append on exit, so the
//! report covers every process that used the directory — including the
//! per-kind hit/miss/write breakdown and the publication-lock contention
//! (`lock_waits`) concurrent processes recorded. `just cache-clean` removes
//! the directory.

use mcd_bench::run_main;
use mcd_dvfs::artifact::ArtifactCache;
use mcd_dvfs::error::McdError;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn human_bytes(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

fn main() -> ExitCode {
    run_main(|| {
        let cache = ArtifactCache::from_env();
        let Some(dir) = cache.dir() else {
            println!("artifact cache is disabled (MCD_NO_CACHE / MCD_CACHE_DIR)");
            return Ok(());
        };
        println!("artifact cache: {}", dir.display());
        println!();

        let entries = cache.entries();
        if entries.is_empty() {
            println!("(no cached artifacts)");
        } else {
            let mut by_kind: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
            for e in &entries {
                let slot = by_kind.entry(e.kind.as_str()).or_default();
                slot.0 += 1;
                slot.1 += e.bytes;
            }
            println!("{:<20} {:>8} {:>12}", "kind", "entries", "bytes");
            println!("{}", "-".repeat(44));
            for (kind, (count, bytes)) in &by_kind {
                println!("{kind:<20} {count:>8} {:>12}", human_bytes(*bytes));
            }
            let total: u64 = entries.iter().map(|e| e.bytes).sum();
            println!();
            println!(
                "{} artifact(s), {} total",
                entries.len(),
                human_bytes(total)
            );
        }

        let log = ArtifactCache::aggregated_stats(dir);
        println!();
        if log.lookups() == 0 && log.writes == 0 {
            println!("no recorded lookups (run a figure binary to populate stats.log)");
        } else {
            println!(
                "recorded counters: hits={} misses={} writes={} errors={} lock_waits={} \
                 ({} lookups)",
                log.hits,
                log.misses,
                log.writes,
                log.errors,
                log.lock_waits,
                log.lookups()
            );
            let kinds = ArtifactCache::aggregated_kind_stats(dir);
            if !kinds.is_empty() {
                println!();
                println!(
                    "{:<20} {:>8} {:>8} {:>8} {:>8} {:>10}",
                    "kind", "hits", "misses", "writes", "errors", "lock_waits"
                );
                println!("{}", "-".repeat(68));
                for (kind, s) in &kinds {
                    println!(
                        "{kind:<20} {:>8} {:>8} {:>8} {:>8} {:>10}",
                        s.hits, s.misses, s.writes, s.errors, s.lock_waits
                    );
                }
            }
        }
        Ok::<(), McdError>(())
    })
}
