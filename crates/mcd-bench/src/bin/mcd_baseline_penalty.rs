//! The MCD processor's inherent penalty relative to a globally synchronous
//! processor (Section 4.1 of the paper reports approximately 1.3% performance
//! and 0.8% energy, with maxima of 3.6% / 2.1%).

use mcd_bench::{run_main, selected_benchmarks, Options, SuiteSelection};
use mcd_dvfs::evaluation::mcd_baseline_penalty;
use mcd_dvfs::evaluation::Summary;
use mcd_sim::config::MachineConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        let benches = selected_benchmarks(&Options::parse(), SuiteSelection::Paper)?;
        let machine = MachineConfig::default();

        println!(
            "Inherent MCD penalty versus a globally synchronous processor (both at full speed)."
        );
        println!();
        println!(
            "{:<16} {:>16} {:>14}",
            "Benchmark", "perf penalty", "energy penalty"
        );
        println!("{}", "-".repeat(50));
        let mut perf = Vec::new();
        let mut energy = Vec::new();
        for bench in &benches {
            let (p, e) = mcd_baseline_penalty(bench, &machine)?;
            println!(
                "{:<16} {:>15.2}% {:>13.2}%",
                bench.name,
                p * 100.0,
                e * 100.0
            );
            perf.push(p);
            energy.push(e);
        }
        println!();
        println!(
            "{:<16} {:>15.2}% {:>13.2}%",
            "average",
            Summary::of(&perf).mean * 100.0,
            Summary::of(&energy).mean * 100.0
        );
        println!(
            "{:<16} {:>15.2}% {:>13.2}%",
            "maximum",
            perf.iter().copied().fold(f64::MIN, f64::max) * 100.0,
            energy.iter().copied().fold(f64::MIN, f64::max) * 100.0
        );
        Ok(())
    })
}
