//! `loadtest` — the evaluation service's load-test harness.
//!
//! Replays the synthetic mixed-tier job stream (see [`mcd_bench::loadtest`])
//! through three phases:
//!
//! 1. **Throughput** — the same stream under serial (one job per entry) and
//!    batched (one [`EvalJob::batch`] group per benchmark) submission, cold
//!    cache; reports jobs/s and p50/p95/p99 queue/completion latency, and
//!    requires the two runs' per-job metrics to hash to the same digest.
//! 2. **Admission** — the stream fired at a bounded front-end, once with a
//!    small queue capacity and once with a token-bucket rate limit; both
//!    must produce nonzero completed *and* rejected counts, proving the
//!    explicit queued/rejected accounting works under pressure.
//! 3. **Shared cache** — N concurrent worker processes (re-executions of
//!    this binary with `--worker`) cold-start on one `MCD_CACHE_DIR`; the
//!    parent then asserts the single-writer guarantee: per artifact kind,
//!    recorded writes equal distinct files — no key was computed twice.
//!
//! Flags: `--points N` (slowdown points per benchmark, default 32),
//! `--procs N` (shared-cache worker processes, default 2), `--smoke`
//! (CI-sized run: 3 points), `--worker` (internal: run one batched stream
//! against the environment's cache directory and append its stats snapshot).
//! Exit status is non-zero on any failed invariant, so CI can run
//! `loadtest --smoke` directly.
//!
//! [`EvalJob::batch`]: mcd_dvfs::service::EvalJob::batch

use mcd_bench::loadtest::{
    cold_config, run_admission, run_batched, run_serial, stream_jobs, RunReport, DEFAULT_POINTS,
};
use mcd_dvfs::artifact::ArtifactCache;
use mcd_dvfs::error::McdError;
use std::collections::BTreeMap;
use std::process::{Command, ExitCode};
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let smoke = flag("--smoke");
    let points =
        value("--points")
            .filter(|&n| n > 0)
            .unwrap_or(if smoke { 3 } else { DEFAULT_POINTS });
    let procs = value("--procs").filter(|&n| n > 0).unwrap_or(2);

    if flag("--worker") {
        return match run_worker(points) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("loadtest worker: {err}");
                ExitCode::FAILURE
            }
        };
    }

    match run_harness(points, procs, smoke) {
        Ok(true) => {
            println!("loadtest: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("loadtest: FAIL");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("loadtest: {err}");
            ExitCode::FAILURE
        }
    }
}

/// `--worker`: one batched pass over the stream against the cache directory
/// the parent set up in the environment, stats snapshot appended on exit.
fn run_worker(points: usize) -> Result<(), McdError> {
    let cache = Arc::new(ArtifactCache::from_env());
    let config = cold_config().with_cache(cache.clone());
    let report = run_batched(&config, stream_jobs(points)?)?;
    eprintln!(
        "loadtest worker: {} job(s) in {:.0} ms",
        report.jobs,
        report.wall.as_secs_f64() * 1e3
    );
    cache.flush_stats_log();
    Ok(())
}

fn run_harness(points: usize, procs: usize, smoke: bool) -> Result<bool, McdError> {
    let mut ok = true;

    // Phase 1: serial vs batched throughput on the identical stream.
    println!("phase 1: throughput (cold, cache disabled, {points} points/benchmark)");
    let config = cold_config();
    let serial = run_serial(&config, stream_jobs(points)?)?;
    print_run("serial", &serial);
    let batched = run_batched(&config, stream_jobs(points)?)?;
    print_run("batched", &batched);
    let speedup = batched.throughput() / serial.throughput().max(1e-9);
    let digests_match = serial.digest == batched.digest;
    println!(
        "loadtest: speedup={speedup:.2}x digests={}",
        if digests_match { "match" } else { "MISMATCH" }
    );
    if !digests_match {
        println!("loadtest: FAIL — batched metrics are not bit-identical to serial metrics");
        ok = false;
    }

    // Phase 2: admission control under pressure.
    println!();
    println!("phase 2: admission (bounded front-end)");
    let capped = run_admission(&config, stream_jobs(points)?, Some(2), None)?;
    println!(
        "loadtest: admission capacity=2 completed={} rejected_queue_full={} \
         rejected_rate_limited={}",
        capped.completed, capped.rejected_queue_full, capped.rejected_rate_limited
    );
    let limited = run_admission(&config, stream_jobs(points)?, None, Some((4.0, 2.0)))?;
    println!(
        "loadtest: admission rate=4/s burst=2 completed={} rejected_queue_full={} \
         rejected_rate_limited={}",
        limited.completed, limited.rejected_queue_full, limited.rejected_rate_limited
    );
    for (label, outcome) in [("capacity", &capped), ("rate", &limited)] {
        if outcome.completed == 0 || outcome.rejected() == 0 {
            println!(
                "loadtest: FAIL — {label} phase must both admit and reject \
                 (completed={}, rejected={})",
                outcome.completed,
                outcome.rejected()
            );
            ok = false;
        }
    }

    // Phase 3: N cold processes on one cache directory — single writer.
    println!();
    let worker_points = if smoke { points } else { points.min(4) };
    println!("phase 3: shared cache ({procs} concurrent cold processes, {worker_points} points)");
    if !shared_cache_phase(worker_points, procs)? {
        ok = false;
    }
    Ok(ok)
}

fn print_run(mode: &str, report: &RunReport) {
    println!(
        "loadtest: {mode:<8} jobs={} wall_ms={:.0} throughput={:.2}/s \
         queue_ms p50={:.0} p95={:.0} p99={:.0} \
         completion_ms p50={:.0} p95={:.0} p99={:.0} digest={:016x}",
        report.jobs,
        report.wall.as_secs_f64() * 1e3,
        report.throughput(),
        report.queue.p50_ms,
        report.queue.p95_ms,
        report.queue.p99_ms,
        report.completion.p50_ms,
        report.completion.p95_ms,
        report.completion.p99_ms,
        report.digest,
    );
}

/// Runs `procs` concurrent `--worker` re-executions of this binary on a
/// fresh shared cache directory, then verifies that per artifact kind the
/// recorded writes equal the distinct files on disk (single-writer) and
/// reports the contention the lock absorbed.
fn shared_cache_phase(points: usize, procs: usize) -> Result<bool, McdError> {
    let exe = std::env::current_exe()
        .map_err(|e| McdError::Internal(format!("cannot locate own executable: {e}")))?;
    let dir = std::env::temp_dir().join(format!("mcd-loadtest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut children = Vec::new();
    for _ in 0..procs {
        let child = Command::new(&exe)
            .args(["--worker", "--points", &points.to_string()])
            .env("MCD_CACHE_DIR", &dir)
            .env_remove("MCD_NO_CACHE")
            .spawn()
            .map_err(|e| McdError::Internal(format!("cannot spawn worker: {e}")))?;
        children.push(child);
    }
    let mut ok = true;
    for mut child in children {
        let status = child
            .wait()
            .map_err(|e| McdError::Internal(format!("cannot wait for worker: {e}")))?;
        if !status.success() {
            println!("loadtest: FAIL — worker exited with {status}");
            ok = false;
        }
    }

    // Distinct artifacts on disk, per kind.
    let cache = ArtifactCache::new(&dir);
    let mut files: BTreeMap<String, u64> = BTreeMap::new();
    for entry in cache.entries() {
        *files.entry(entry.kind).or_default() += 1;
    }
    // Writes recorded across every process that used the directory.
    let recorded: BTreeMap<String, _> = ArtifactCache::aggregated_kind_stats(&dir)
        .into_iter()
        .collect();
    let totals = ArtifactCache::aggregated_stats(&dir);

    let mut duplicates = 0u64;
    for (kind, count) in &files {
        let writes = recorded.get(kind).map(|s| s.writes).unwrap_or(0);
        let dup = writes.saturating_sub(*count);
        duplicates += dup;
        println!("loadtest: shared-cache kind={kind} files={count} writes={writes} dup={dup}");
    }
    println!(
        "loadtest: shared-cache procs={procs} duplicate_writes={duplicates} lock_waits={} \
         writes={}",
        totals.lock_waits, totals.writes
    );
    if files.is_empty() || totals.writes == 0 {
        println!("loadtest: FAIL — shared-cache phase produced no artifacts");
        ok = false;
    }
    if duplicates > 0 {
        println!(
            "loadtest: FAIL — {duplicates} duplicate write(s): concurrent processes \
             recomputed a published key"
        );
        ok = false;
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(ok)
}
