//! `loadtest` — the evaluation service's load-test harness.
//!
//! Replays the synthetic mixed-tier job stream (see [`mcd_bench::loadtest`])
//! through three phases:
//!
//! 1. **Throughput** — the same stream under serial (one job per entry) and
//!    batched (one [`EvalJob::batch`] group per benchmark) submission, cold
//!    cache; reports jobs/s and p50/p95/p99 queue/completion latency, and
//!    requires the two runs' per-job metrics to hash to the same digest.
//! 2. **Admission** — the stream fired at a bounded front-end, once with a
//!    small queue capacity and once with a token-bucket rate limit; both
//!    must produce nonzero completed *and* rejected counts, proving the
//!    explicit queued/rejected accounting works under pressure.
//! 3. **Shared cache** — N concurrent worker processes (re-executions of
//!    this binary with `--worker`) cold-start on one `MCD_CACHE_DIR`; the
//!    parent then asserts the single-writer guarantee: per artifact kind,
//!    recorded writes equal distinct files — no key was computed twice.
//! 4. **Chaos** — the stream replayed twice through identical machinery
//!    (evaluator plus artifact cache on a fresh directory), once under a
//!    disabled fault plan and once under the seeded
//!    [`FaultConfig::chaos`] preset (injected read/write errors, torn
//!    writes, lock stalls, worker panics). The self-healing gates: every
//!    job reaches exactly one terminal event; every failure is attributable
//!    to injection; every *surviving* job's metrics hash bit-identical to
//!    the fault-free run's at the same stream index; the cache directory
//!    afterwards holds only envelope-verified artifacts and zero stranded
//!    `.lock-*`/`.tmp-*` debris; and a liveness watchdog armed around the
//!    phase never fires (exit 3 if it does).
//!
//! Flags: `--points N` (slowdown points per benchmark, default 32),
//! `--procs N` (shared-cache worker processes, default 2), `--smoke`
//! (CI-sized run: 3 points), `--fault-seed N` (chaos-phase seed, default
//! 42 — rerunning with the failing seed replays the exact injection
//! sequence), `--chaos-only` (skip phases 1–3; what CI's seed matrix runs),
//! `--worker` (internal: run one batched stream against the environment's
//! cache directory and append its stats snapshot). Exit status is non-zero
//! on any failed invariant, so CI can run `loadtest --smoke` directly.
//!
//! [`FaultConfig::chaos`]: mcd_dvfs::FaultConfig::chaos
//!
//! [`EvalJob::batch`]: mcd_dvfs::service::EvalJob::batch

use mcd_bench::loadtest::{
    check_cache_integrity, cold_config, run_admission, run_batched, run_chaos, run_serial,
    stream_jobs, ChaosReport, RunReport, DEFAULT_POINTS,
};
use mcd_dvfs::artifact::ArtifactCache;
use mcd_dvfs::error::McdError;
use mcd_dvfs::fault::InjectedPanic;
use mcd_dvfs::{FaultConfig, FaultSite};
use std::collections::BTreeMap;
use std::process::{Command, ExitCode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default chaos seed — any value works (the gates hold for every seed);
/// fixing one makes the default run reproducible byte-for-byte.
const DEFAULT_FAULT_SEED: u64 = 42;

/// Wall-clock budget for the chaos phase's liveness watchdog. Generous — a
/// healthy smoke run finishes in seconds — so the only way it fires is a
/// genuinely stranded job, lock, or stream.
const WATCHDOG_BUDGET: Duration = Duration::from_secs(240);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
    };
    let smoke = flag("--smoke");
    let points =
        value("--points")
            .filter(|&n| n > 0)
            .unwrap_or(if smoke { 3 } else { DEFAULT_POINTS });
    let procs = value("--procs").filter(|&n| n > 0).unwrap_or(2);
    let seed = value("--fault-seed")
        .map(|n| n as u64)
        .unwrap_or(DEFAULT_FAULT_SEED);

    if flag("--worker") {
        return match run_worker(points) {
            Ok(()) => ExitCode::SUCCESS,
            Err(err) => {
                eprintln!("loadtest worker: {err}");
                ExitCode::FAILURE
            }
        };
    }

    // Injected panics are expected traffic in the chaos phase; silence their
    // default-hook backtraces so real panics stay visible in the output.
    silence_injected_panics();

    if flag("--chaos-only") {
        return match chaos_phase(points, seed) {
            Ok(true) => {
                println!("loadtest: PASS");
                ExitCode::SUCCESS
            }
            Ok(false) => {
                println!("loadtest: FAIL");
                ExitCode::FAILURE
            }
            Err(err) => {
                eprintln!("loadtest: {err}");
                ExitCode::FAILURE
            }
        };
    }

    match run_harness(points, procs, smoke, seed) {
        Ok(true) => {
            println!("loadtest: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("loadtest: FAIL");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("loadtest: {err}");
            ExitCode::FAILURE
        }
    }
}

/// `--worker`: one batched pass over the stream against the cache directory
/// the parent set up in the environment, stats snapshot appended on exit.
fn run_worker(points: usize) -> Result<(), McdError> {
    let cache = Arc::new(ArtifactCache::from_env());
    let config = cold_config().with_cache(cache.clone());
    let report = run_batched(&config, stream_jobs(points)?)?;
    eprintln!(
        "loadtest worker: {} job(s) in {:.0} ms",
        report.jobs,
        report.wall.as_secs_f64() * 1e3
    );
    cache.flush_stats_log();
    Ok(())
}

/// Replaces the panic hook with one that swallows [`InjectedPanic`] payloads
/// (they are caught and converted to `JobFailed` by the evaluator — their
/// backtraces are noise) and forwards everything else to the previous hook.
fn silence_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().downcast_ref::<InjectedPanic>().is_some() {
            return;
        }
        previous(info);
    }));
}

fn run_harness(points: usize, procs: usize, smoke: bool, seed: u64) -> Result<bool, McdError> {
    let mut ok = true;

    // Phase 1: serial vs batched throughput on the identical stream.
    println!("phase 1: throughput (cold, cache disabled, {points} points/benchmark)");
    let config = cold_config();
    let serial = run_serial(&config, stream_jobs(points)?)?;
    print_run("serial", &serial);
    let batched = run_batched(&config, stream_jobs(points)?)?;
    print_run("batched", &batched);
    let speedup = batched.throughput() / serial.throughput().max(1e-9);
    let digests_match = serial.digest == batched.digest;
    println!(
        "loadtest: speedup={speedup:.2}x digests={}",
        if digests_match { "match" } else { "MISMATCH" }
    );
    if !digests_match {
        println!("loadtest: FAIL — batched metrics are not bit-identical to serial metrics");
        ok = false;
    }

    // Phase 2: admission control under pressure.
    println!();
    println!("phase 2: admission (bounded front-end)");
    let capped = run_admission(&config, stream_jobs(points)?, Some(2), None)?;
    println!(
        "loadtest: admission capacity=2 completed={} rejected_queue_full={} \
         rejected_rate_limited={}",
        capped.completed, capped.rejected_queue_full, capped.rejected_rate_limited
    );
    let limited = run_admission(&config, stream_jobs(points)?, None, Some((4.0, 2.0)))?;
    println!(
        "loadtest: admission rate=4/s burst=2 completed={} rejected_queue_full={} \
         rejected_rate_limited={}",
        limited.completed, limited.rejected_queue_full, limited.rejected_rate_limited
    );
    for (label, outcome) in [("capacity", &capped), ("rate", &limited)] {
        if outcome.completed == 0 || outcome.rejected() == 0 {
            println!(
                "loadtest: FAIL — {label} phase must both admit and reject \
                 (completed={}, rejected={})",
                outcome.completed,
                outcome.rejected()
            );
            ok = false;
        }
    }

    // Phase 3: N cold processes on one cache directory — single writer.
    println!();
    let worker_points = if smoke { points } else { points.min(4) };
    println!("phase 3: shared cache ({procs} concurrent cold processes, {worker_points} points)");
    if !shared_cache_phase(worker_points, procs)? {
        ok = false;
    }

    // Phase 4: seeded fault injection against the self-healing machinery.
    println!();
    if !chaos_phase(points, seed)? {
        ok = false;
    }
    Ok(ok)
}

/// Arms a liveness watchdog: a detached thread that force-exits the process
/// (status 3) if the returned flag is not raised within the budget. A fired
/// watchdog means a job, lock, or stream was stranded — exactly the hang
/// class panic isolation and lock stealing exist to prevent.
fn arm_watchdog(budget: Duration) -> Arc<AtomicBool> {
    let disarmed = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&disarmed);
    std::thread::spawn(move || {
        let start = Instant::now();
        while start.elapsed() < budget {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        eprintln!(
            "loadtest: FAIL — chaos watchdog fired after {:.0} s: a job, lock, or \
             stream is stranded",
            budget.as_secs_f64()
        );
        std::process::exit(3);
    });
    disarmed
}

/// Phase 4: the stream under a disabled plan (reference) and under
/// [`FaultConfig::chaos`] with `seed`, through identical evaluator + cache
/// machinery on fresh directories. See the module docs for the gates.
fn chaos_phase(points: usize, seed: u64) -> Result<bool, McdError> {
    println!("phase 4: chaos (seeded fault injection, seed={seed}, {points} points/benchmark)");
    let base = std::env::temp_dir().join(format!("mcd-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let disarmed = arm_watchdog(WATCHDOG_BUDGET);

    let reference = run_chaos(
        &base.join("reference"),
        stream_jobs(points)?,
        FaultConfig::default(),
        2,
    )?;
    print_chaos("fault-free", &reference);
    let chaos = run_chaos(
        &base.join("chaos"),
        stream_jobs(points)?,
        FaultConfig::chaos(seed),
        2,
    )?;
    print_chaos("chaos", &chaos);
    disarmed.store(true, Ordering::Relaxed);

    let mut ok = true;
    let mut fail = |message: String| {
        println!("loadtest: FAIL — {message}");
        ok = false;
    };

    // The reference run must be clean: no faults without a plan.
    if reference.completed != reference.jobs || reference.faulted != 0 {
        fail(format!(
            "fault-free reference run degraded (completed={}/{} faulted={})",
            reference.completed, reference.jobs, reference.faulted
        ));
    }
    // Every job reaches exactly one terminal event, in both runs.
    for (label, report) in [("fault-free", &reference), ("chaos", &chaos)] {
        if report.double_terminals != 0 {
            fail(format!(
                "{label}: {} job(s) with zero or duplicate terminal events",
                report.double_terminals
            ));
        }
        if !report.unexpected.is_empty() {
            fail(format!(
                "{label}: non-injected failure(s): {:?}",
                report.unexpected
            ));
        }
    }
    if chaos.completed + chaos.faulted != chaos.jobs {
        fail(format!(
            "chaos: {} completed + {} faulted != {} submitted",
            chaos.completed, chaos.faulted, chaos.jobs
        ));
    }
    // The chaos plan must actually have fired, or the phase proves nothing.
    if chaos.faults.injected_total() == 0 {
        fail("chaos: the fault plan never injected anything".to_string());
    }
    // Surviving jobs are bit-identical to the fault-free run, index by index.
    let mut mismatches = 0usize;
    for (i, digest) in chaos.digests.iter().enumerate() {
        let Some(digest) = digest else { continue };
        if reference.digests[i] != Some(*digest) {
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        fail(format!(
            "chaos: {mismatches} surviving job(s) diverged bit-wise from the \
             fault-free run"
        ));
    } else {
        println!(
            "loadtest: chaos survivors={} all bit-identical to fault-free run",
            chaos.completed
        );
    }
    // On-disk aftermath: only envelope-verified artifacts, zero debris.
    for (label, dir) in [("fault-free", "reference"), ("chaos", "chaos")] {
        let integrity = check_cache_integrity(&base.join(dir));
        println!(
            "loadtest: {label} cache artifacts={} corrupt={} stranded={}",
            integrity.artifacts,
            integrity.corrupt.len(),
            integrity.stranded.len()
        );
        if integrity.artifacts == 0 {
            fail(format!("{label}: run published no artifacts"));
        }
        if !integrity.clean() {
            fail(format!(
                "{label}: torn artifact(s) {:?} / stranded debris {:?}",
                integrity.corrupt, integrity.stranded
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    Ok(ok)
}

fn print_chaos(label: &str, report: &ChaosReport) {
    let injected: Vec<String> = FaultSite::ALL
        .iter()
        .map(|&site| format!("{}={}", site.label(), report.faults.injected_at(site)))
        .collect();
    println!(
        "loadtest: {label:<10} jobs={} completed={} faulted={} wall_ms={:.0} \
         retries={} recovered={} exhausted={} injected[{}]",
        report.jobs,
        report.completed,
        report.faulted,
        report.wall.as_secs_f64() * 1e3,
        report.retry.retries,
        report.retry.recovered,
        report.retry.exhausted,
        injected.join(" "),
    );
}

fn print_run(mode: &str, report: &RunReport) {
    println!(
        "loadtest: {mode:<8} jobs={} wall_ms={:.0} throughput={:.2}/s \
         queue_ms p50={:.0} p95={:.0} p99={:.0} \
         completion_ms p50={:.0} p95={:.0} p99={:.0} digest={:016x}",
        report.jobs,
        report.wall.as_secs_f64() * 1e3,
        report.throughput(),
        report.queue.p50_ms,
        report.queue.p95_ms,
        report.queue.p99_ms,
        report.completion.p50_ms,
        report.completion.p95_ms,
        report.completion.p99_ms,
        report.digest,
    );
}

/// Runs `procs` concurrent `--worker` re-executions of this binary on a
/// fresh shared cache directory, then verifies that per artifact kind the
/// recorded writes equal the distinct files on disk (single-writer) and
/// reports the contention the lock absorbed.
fn shared_cache_phase(points: usize, procs: usize) -> Result<bool, McdError> {
    let exe = std::env::current_exe()
        .map_err(|e| McdError::Internal(format!("cannot locate own executable: {e}")))?;
    let dir = std::env::temp_dir().join(format!("mcd-loadtest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut children = Vec::new();
    for _ in 0..procs {
        let child = Command::new(&exe)
            .args(["--worker", "--points", &points.to_string()])
            .env("MCD_CACHE_DIR", &dir)
            .env_remove("MCD_NO_CACHE")
            .spawn()
            .map_err(|e| McdError::Internal(format!("cannot spawn worker: {e}")))?;
        children.push(child);
    }
    let mut ok = true;
    for mut child in children {
        let status = child
            .wait()
            .map_err(|e| McdError::Internal(format!("cannot wait for worker: {e}")))?;
        if !status.success() {
            println!("loadtest: FAIL — worker exited with {status}");
            ok = false;
        }
    }

    // Distinct artifacts on disk, per kind.
    let cache = ArtifactCache::new(&dir);
    let mut files: BTreeMap<String, u64> = BTreeMap::new();
    for entry in cache.entries() {
        *files.entry(entry.kind).or_default() += 1;
    }
    // Writes recorded across every process that used the directory.
    let recorded: BTreeMap<String, _> = ArtifactCache::aggregated_kind_stats(&dir)
        .into_iter()
        .collect();
    let totals = ArtifactCache::aggregated_stats(&dir);

    let mut duplicates = 0u64;
    for (kind, count) in &files {
        let writes = recorded.get(kind).map(|s| s.writes).unwrap_or(0);
        let dup = writes.saturating_sub(*count);
        duplicates += dup;
        println!("loadtest: shared-cache kind={kind} files={count} writes={writes} dup={dup}");
    }
    println!(
        "loadtest: shared-cache procs={procs} duplicate_writes={duplicates} lock_waits={} \
         writes={}",
        totals.lock_waits, totals.writes
    );
    if files.is_empty() || totals.writes == 0 {
        println!("loadtest: FAIL — shared-cache phase produced no artifacts");
        ok = false;
    }
    if duplicates > 0 {
        println!(
            "loadtest: FAIL — {duplicates} duplicate write(s): concurrent processes \
             recomputed a published key"
        );
        ok = false;
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(ok)
}
