//! Ablation: sensitivity of the profile-driven mechanism to the long-running
//! node threshold (the paper fixes it at 10 000 instructions, arguing that a
//! longer window could only reduce reconfiguration quality while a shorter one
//! would not leave enough time for a frequency change to settle).
//!
//! The sweep varies the threshold and reports how many reconfiguration points
//! are selected, how often the production run reconfigures, and what that does
//! to the energy/performance trade-off.

use mcd_bench::{format, run_main, selected_benchmarks, Options, SuiteSelection};
use mcd_dvfs::evaluation::Summary;
use mcd_dvfs::evaluation::{relative, run_baseline};
use mcd_dvfs::profile::{train, TrainingConfig};
use mcd_sim::config::MachineConfig;
use mcd_sim::simulator::Simulator;
use mcd_workloads::generator::generate_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(run)
}

fn run() -> Result<(), mcd_dvfs::error::McdError> {
    // The sweep runs five thresholds over the suite, so it always uses the
    // compact subset of the selected tier (--suite picks the tier).
    let options = Options {
        quick: true,
        ..Options::parse()
    };
    let benches = selected_benchmarks(&options, SuiteSelection::Paper)?;
    let machine = MachineConfig::default();
    let thresholds: [u64; 5] = [1_000, 5_000, 10_000, 50_000, 200_000];

    println!("Ablation: long-running node threshold (L+F policy, suite subset).");
    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>14} {:>14}",
        "threshold", "reconf points", "reg writes", "overhead", "slowdown", "energy save"
    );
    println!("{}", "-".repeat(86));

    for &threshold in &thresholds {
        let mut points = 0usize;
        let mut writes = 0u64;
        let mut overhead = 0.0f64;
        let mut slowdowns = Vec::new();
        let mut savings = Vec::new();
        for bench in &benches {
            let config = TrainingConfig {
                long_running_threshold: threshold,
                ..TrainingConfig::default()
            };
            let plan = train(&bench.program, &bench.inputs.training, &machine, &config);
            points += plan.instrumentation.static_reconfiguration_points();
            let reference = generate_trace(&bench.program, &bench.inputs.reference);
            let baseline = run_baseline(bench, &machine);
            let mut hooks = plan.hooks();
            let stats = Simulator::new(machine.clone())
                .run(reference, &mut hooks, false)
                .stats;
            writes += stats.reconfigurations;
            overhead += stats.overhead_cycles;
            let m = relative(&stats, &baseline);
            slowdowns.push(m.performance_degradation);
            savings.push(m.energy_savings);
        }
        println!(
            "{:<12} {:>14} {:>14} {:>12.0} {:>14} {:>14}",
            threshold,
            points,
            writes,
            overhead,
            format::pct(Summary::of(&slowdowns).mean),
            format::pct(Summary::of(&savings).mean),
        );
    }
    println!();
    println!(
        "Very small thresholds multiply the number of reconfiguration points and register \
         writes for little additional benefit; very large thresholds merge distinct phases \
         into single settings and give up energy savings — the paper's 10 000-instruction \
         choice sits on the flat part of the curve."
    );
    Ok(())
}
