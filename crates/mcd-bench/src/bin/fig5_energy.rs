//! Figure 5: energy savings of the off-line, on-line and profile-based (L+F)
//! reconfiguration schemes relative to the baseline MCD processor.

use mcd_bench::{default_config, evaluate_all, format, mean, quick_requested, selected_suite};

fn main() {
    let quick = quick_requested();
    let benches = selected_suite(quick);
    let config = default_config(false);
    let evals = evaluate_all(&benches, &config);

    println!("Figure 5. Energy savings results (relative to the MCD baseline).");
    println!();
    format::header(&[("Benchmark", 16), ("off-line", 9), ("on-line", 9), ("profile L+F", 12)]);
    let mut offline = Vec::new();
    let mut online = Vec::new();
    let mut profile = Vec::new();
    for e in &evals {
        println!(
            "{:>16}  {:>9}  {:>9}  {:>12}",
            e.name,
            format::pct(e.offline.metrics.energy_savings),
            format::pct(e.online.metrics.energy_savings),
            format::pct(e.profile.metrics.energy_savings),
        );
        offline.push(e.offline.metrics.energy_savings);
        online.push(e.online.metrics.energy_savings);
        profile.push(e.profile.metrics.energy_savings);
    }
    println!();
    println!(
        "{:>16}  {:>9}  {:>9}  {:>12}",
        "average",
        format::pct(mean(&offline)),
        format::pct(mean(&online)),
        format::pct(mean(&profile)),
    );
}
