//! Figure 5: energy savings of every registered reconfiguration scheme
//! relative to the baseline MCD processor.
//!
//! Run with `--quick` to evaluate a six-benchmark subset.

use mcd_bench::{metric_figure, run_main, Metric, Options};
use std::process::ExitCode;

fn main() -> ExitCode {
    run_main(|| {
        metric_figure(
            "Figure 5. Energy savings results (relative to the MCD baseline).",
            Metric::EnergySavings,
            &Options::parse(),
        )
    })
}
