//! Shared infrastructure for the benchmark harness that regenerates every
//! table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one table or figure; this library
//! provides the common pieces: one flag parser ([`cli::Options`]), the
//! evaluation configuration, suite selection, the [`Evaluator`]-backed batch
//! entry point with streamed progress, scheme-agnostic metric tables,
//! error-reporting `main` plumbing, and plain-text formatting that mirrors
//! the rows/series the paper reports.

#![warn(missing_docs)]

pub mod cli;
pub mod loadtest;
pub mod timing;
pub mod tournament;

use mcd_dvfs::artifact::ArtifactCache;
use mcd_dvfs::error::McdError;
use mcd_dvfs::evaluation::{BenchmarkEvaluation, EvaluationConfig, Summary};
use mcd_dvfs::service::{EvalEvent, EvalJob, Evaluator, ResultStream};
use mcd_sim::stats::RelativeMetrics;
use mcd_workloads::suite::{self, suite, Benchmark, SuiteKind};
use std::sync::{Arc, OnceLock};

pub use cli::{Options, SuiteSelection};

/// The slowdown target used for the headline results (the paper's Figures 4–7
/// use a dilation target of roughly 7%).
pub const HEADLINE_SLOWDOWN: f64 = 0.07;

/// Returns the paper-tier benchmarks to evaluate. `quick` restricts the run
/// to a representative six-benchmark subset (useful while iterating); the
/// full suite is all nineteen programs.
pub fn selected_suite(quick: bool) -> Vec<Benchmark> {
    let all = suite();
    if !quick {
        return all;
    }
    let keep = [
        "adpcm decode",
        "epic encode",
        "jpeg compress",
        "mcf",
        "swim",
        "art",
    ];
    all.into_iter().filter(|b| keep.contains(&b.name)).collect()
}

/// Returns the benchmarks selected by `--suite` / `MCD_SUITE` (falling back
/// to `default` when absent), honouring `--quick`.
///
/// The second-tier selections are already small (three or six benchmarks),
/// so `--quick` only subsets the paper tier: `paper` quick is the
/// representative six, `all` quick pairs that subset with the whole second
/// tier, and `server` / `interactive` / `tier2` are unaffected.
pub fn selected_benchmarks(
    options: &Options,
    default: SuiteSelection,
) -> Result<Vec<Benchmark>, McdError> {
    Ok(match options.suite_selection(default)? {
        SuiteSelection::Paper => selected_suite(options.quick),
        SuiteSelection::Server => suite::tier(SuiteKind::Server),
        SuiteSelection::Interactive => suite::tier(SuiteKind::Interactive),
        SuiteSelection::Tier2 => suite::server_suite(),
        SuiteSelection::All => {
            let mut benches = selected_suite(options.quick);
            benches.extend(suite::server_suite());
            benches
        }
    })
}

/// The cache shared by every evaluation this process runs, resolved once from
/// the first caller's [`Options`] (so hit/miss counters accumulate across a
/// binary's sweeps).
static SHARED_CACHE: OnceLock<Arc<ArtifactCache>> = OnceLock::new();

/// The artifact cache shared by every evaluation this process runs: resolved
/// once from `--no-cache` / `MCD_NO_CACHE` / `MCD_CACHE_DIR` (defaulting to
/// `.mcd-cache/`).
pub fn shared_cache(options: &Options) -> Arc<ArtifactCache> {
    SHARED_CACHE
        .get_or_init(|| {
            if options.no_cache {
                Arc::new(ArtifactCache::disabled())
            } else {
                Arc::new(ArtifactCache::from_env())
            }
        })
        .clone()
}

/// Reports the shared cache's counters on stderr (machine-greppable, used by
/// the CI cold/warm smoke test) and appends them to the cache directory's
/// stats log so `cache_stats` can aggregate across processes. A process that
/// never touched the shared cache reports nothing.
pub fn report_cache() {
    let Some(cache) = SHARED_CACHE.get() else {
        return;
    };
    if !cache.is_enabled() {
        return;
    }
    let s = cache.stats();
    if s.lookups() == 0 && s.writes == 0 {
        return;
    }
    eprintln!(
        "mcd-cache: hits={} misses={} writes={} errors={} dir={}",
        s.hits,
        s.misses,
        s.writes,
        s.errors,
        cache
            .dir()
            .expect("enabled cache has a directory")
            .display()
    );
    // Per-kind breakdown: the CI sweep smoke asserts `misses=0` on the
    // expensive slowdown-independent kinds specifically (packed-trace,
    // window-histograms), not just on the aggregate.
    for (kind, k) in cache.kind_stats_all() {
        eprintln!(
            "mcd-cache[{kind}]: hits={} misses={} writes={} errors={}",
            k.hits, k.misses, k.writes, k.errors
        );
    }
    cache.flush_stats_log();
}

/// The default evaluation configuration used by the figure binaries.
pub fn default_config(options: &Options, include_global: bool) -> EvaluationConfig {
    EvaluationConfig {
        include_global,
        parallelism: options.parallelism(),
        ..EvaluationConfig::default()
    }
    .with_slowdown(HEADLINE_SLOWDOWN)
    .with_cache(shared_cache(options))
}

/// Drains a [`ResultStream`], narrating per-job progress on stderr as events
/// arrive, and returns the evaluations in submission order — the harness's
/// standard way of consuming a submission.
pub fn collect_streaming(stream: ResultStream) -> Result<Vec<BenchmarkEvaluation>, McdError> {
    stream.collect_with(|event| match event {
        EvalEvent::JobCompleted { evaluation, .. } => {
            eprintln!("    {}: done", evaluation.name);
        }
        EvalEvent::JobFailed {
            benchmark, error, ..
        } => {
            eprintln!("    {benchmark}: FAILED: {error}");
        }
        _ => {}
    })
}

/// Evaluates every benchmark in `benches` under `config` through one
/// single-batch [`Evaluator`], streaming per-benchmark progress to stderr.
///
/// Sweeps that evaluate many configurations should build one [`Evaluator`]
/// themselves and submit every configuration's jobs to it, so reference
/// traces and baselines are shared across the whole sweep.
pub fn evaluate_all(
    benches: &[Benchmark],
    config: &EvaluationConfig,
) -> Result<Vec<BenchmarkEvaluation>, McdError> {
    eprintln!(
        "  evaluating {} benchmark(s) on {} thread(s) ...",
        benches.len(),
        config.parallelism.max(1)
    );
    let workers = config.parallelism.max(1).min(benches.len().max(1));
    let evaluator = Evaluator::builder()
        .config(config.clone())
        .workers(workers)
        .build();
    let jobs = benches.iter().cloned().map(EvalJob::new).collect();
    collect_streaming(evaluator.submit_all(jobs))
}

/// One of the paper's three headline metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Performance degradation relative to the MCD baseline (Figure 4).
    Slowdown,
    /// Energy savings relative to the MCD baseline (Figure 5).
    EnergySavings,
    /// Energy·delay improvement relative to the MCD baseline (Figure 6).
    EnergyDelay,
}

impl Metric {
    /// Extracts this metric from a set of relative metrics.
    pub fn of(self, m: &RelativeMetrics) -> f64 {
        match self {
            Metric::Slowdown => m.performance_degradation,
            Metric::EnergySavings => m.energy_savings,
            Metric::EnergyDelay => m.energy_delay_improvement,
        }
    }
}

/// Runs the standard per-benchmark, per-scheme figure: evaluates the selected
/// suite (tier selection via `--suite`, paper tier by default) and prints one
/// row per benchmark with one column per registered scheme, plus a suite
/// average (the shape of Figures 4–6).
pub fn metric_figure(title: &str, metric: Metric, options: &Options) -> Result<(), McdError> {
    let benches = selected_benchmarks(options, SuiteSelection::Paper)?;
    let config = default_config(options, false);
    let evals = evaluate_all(&benches, &config)?;
    print_metric_table(title, &evals, metric);
    report_cache();
    Ok(())
}

/// The table's columns: the union of scheme `(name, label)` pairs across all
/// evaluations, in first-appearance order (evaluations from one registry keep
/// its order; schemes that only appear in later rows are appended rather than
/// dropped).
fn scheme_columns(evals: &[BenchmarkEvaluation]) -> Vec<(String, String)> {
    let mut columns: Vec<(String, String)> = Vec::new();
    for eval in evals {
        for outcome in &eval.schemes {
            if !columns.iter().any(|(name, _)| *name == outcome.name) {
                columns.push((outcome.name.clone(), outcome.label.clone()));
            }
        }
    }
    columns
}

/// Prints one per-benchmark, per-scheme metric table with a closing average
/// row. Columns are the union of schemes over all evaluations, so rows from
/// different registries align by name and every scheme is shown; a row that
/// lacks a column's scheme prints "-".
pub fn print_metric_table(title: &str, evals: &[BenchmarkEvaluation], metric: Metric) {
    println!("{title}");
    println!();
    if evals.is_empty() {
        println!("(no benchmarks selected)");
        return;
    }
    let schemes = scheme_columns(evals);
    let mut columns: Vec<(&str, usize)> = vec![("Benchmark", 16)];
    for (_, label) in &schemes {
        columns.push((label, label.len().max(9)));
    }
    format::header(&columns);
    let mut sums = vec![Vec::new(); schemes.len()];
    for eval in evals {
        print!("{:>16}", eval.name);
        for (i, (name, label)) in schemes.iter().enumerate() {
            let width = label.len().max(9);
            match eval.result(name) {
                Some(result) => {
                    let value = metric.of(&result.metrics);
                    print!("  {:>width$}", format::pct(value));
                    sums[i].push(value);
                }
                None => print!("  {:>width$}", "-"),
            }
        }
        println!();
    }
    println!();
    print!("{:>16}", "average");
    for (i, (_, label)) in schemes.iter().enumerate() {
        print!(
            "  {:>width$}",
            format::pct(Summary::of(&sums[i]).mean),
            width = label.len().max(9)
        );
    }
    println!();
}

pub use mcd_dvfs::error::run_main;

/// Formatting helpers for the text tables the binaries print.
pub mod format {
    /// Formats a fraction as a percentage with one decimal.
    pub fn pct(fraction: f64) -> String {
        format!("{:6.1}%", fraction * 100.0)
    }

    /// Prints a header row followed by a separator of matching width.
    pub fn header(columns: &[(&str, usize)]) {
        let mut line = String::new();
        for (name, width) in columns {
            line.push_str(&format!("{name:>width$}  ", width = width));
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len().max(1)));
    }

    /// Pads a benchmark name to the standard column width.
    pub fn name_cell(name: &str) -> String {
        format!("{name:<16}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_dvfs::evaluation::SchemeResult;
    use mcd_dvfs::scheme::SchemeOutcome;
    use mcd_sim::stats::SimStats;

    #[test]
    fn quick_suite_is_a_subset() {
        let quick = selected_suite(true);
        let full = selected_suite(false);
        assert_eq!(full.len(), 19);
        assert!(quick.len() < full.len());
        assert!(quick.len() >= 5);
        for b in &quick {
            assert!(full.iter().any(|f| f.name == b.name));
        }
    }

    #[test]
    fn suite_selection_picks_the_right_tier() {
        let with_suite = |suite: Option<&str>, quick: bool| Options {
            suite: suite.map(|s| s.to_string()),
            quick,
            ..Options::default()
        };
        let paper = selected_benchmarks(&with_suite(None, false), SuiteSelection::Paper).unwrap();
        assert_eq!(paper.len(), 19);
        let tier2 =
            selected_benchmarks(&with_suite(Some("tier2"), false), SuiteSelection::Paper).unwrap();
        assert_eq!(tier2.len(), 6);
        // The default argument applies when no flag is given.
        let defaulted =
            selected_benchmarks(&with_suite(None, false), SuiteSelection::Tier2).unwrap();
        assert_eq!(defaulted.len(), 6);
        // --quick subsets only the paper tier.
        let tier2_quick =
            selected_benchmarks(&with_suite(Some("tier2"), true), SuiteSelection::Paper).unwrap();
        assert_eq!(tier2_quick.len(), 6);
        let all_quick =
            selected_benchmarks(&with_suite(Some("all"), true), SuiteSelection::Paper).unwrap();
        assert_eq!(all_quick.len(), 12); // 6 paper subset + 6 second tier
        let server =
            selected_benchmarks(&with_suite(Some("server"), false), SuiteSelection::Paper).unwrap();
        assert_eq!(server.len(), 3);
        assert!(server.iter().all(|b| b.suite == SuiteKind::Server));
        assert!(
            selected_benchmarks(&with_suite(Some("bogus"), false), SuiteSelection::Paper).is_err()
        );
    }

    #[test]
    fn default_config_uses_headline_slowdown() {
        let options = Options {
            no_cache: true,
            ..Options::default()
        };
        let cfg = default_config(&options, true);
        assert!((cfg.training.slowdown - HEADLINE_SLOWDOWN).abs() < 1e-12);
        assert!((cfg.offline.slowdown - HEADLINE_SLOWDOWN).abs() < 1e-12);
        assert!(cfg.include_global);
        assert!(cfg.parallelism >= 1);
    }

    #[test]
    fn pct_formats_one_decimal() {
        assert_eq!(format::pct(0.314).trim(), "31.4%");
    }

    #[test]
    fn metric_extracts_the_right_field() {
        let m = RelativeMetrics {
            performance_degradation: 0.05,
            energy_savings: 0.2,
            energy_delay_improvement: 0.16,
        };
        assert_eq!(Metric::Slowdown.of(&m), 0.05);
        assert_eq!(Metric::EnergySavings.of(&m), 0.2);
        assert_eq!(Metric::EnergyDelay.of(&m), 0.16);
    }

    fn fake_eval(bench: &str, schemes: &[(&str, &str)]) -> BenchmarkEvaluation {
        BenchmarkEvaluation {
            name: bench.to_string(),
            schemes: schemes
                .iter()
                .map(|(name, label)| SchemeOutcome {
                    name: name.to_string(),
                    label: label.to_string(),
                    result: SchemeResult {
                        stats: SimStats::default(),
                        metrics: RelativeMetrics::default(),
                    },
                })
                .collect(),
            baseline: SimStats::default(),
        }
    }

    #[test]
    fn scheme_columns_take_the_union_across_rows_in_first_appearance_order() {
        // The second row carries a scheme the first row lacks (`global`), and
        // the third carries one nothing else has (`pid`): both must appear,
        // after the schemes the first row established.
        let evals = vec![
            fake_eval(
                "adpcm decode",
                &[("offline", "off-line"), ("online", "on-line")],
            ),
            fake_eval(
                "gsm decode",
                &[
                    ("offline", "off-line"),
                    ("online", "on-line"),
                    ("global", "global"),
                ],
            ),
            fake_eval("art", &[("offline", "off-line"), ("pid", "pid")]),
        ];
        let columns = scheme_columns(&evals);
        let names: Vec<&str> = columns.iter().map(|(name, _)| name.as_str()).collect();
        assert_eq!(names, vec!["offline", "online", "global", "pid"]);
    }

    #[test]
    fn scheme_columns_of_a_uniform_registry_keep_registry_order() {
        let evals = vec![
            fake_eval("a", &[("offline", "off-line"), ("profile", "profile L+F")]),
            fake_eval("b", &[("offline", "off-line"), ("profile", "profile L+F")]),
        ];
        let columns = scheme_columns(&evals);
        let names: Vec<&str> = columns.iter().map(|(name, _)| name.as_str()).collect();
        assert_eq!(names, vec!["offline", "profile"]);
        assert_eq!(columns[1].1, "profile L+F");
    }
}
