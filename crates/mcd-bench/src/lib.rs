//! Shared infrastructure for the benchmark harness that regenerates every
//! table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one table or figure; this library
//! provides the common pieces: the evaluation configuration, suite selection,
//! the registry-driven evaluation entry point (parallel across benchmarks),
//! scheme-agnostic metric tables, error-reporting `main` plumbing, and
//! plain-text formatting that mirrors the rows/series the paper reports.

#![warn(missing_docs)]

pub mod timing;

use mcd_dvfs::artifact::ArtifactCache;
use mcd_dvfs::error::McdError;
use mcd_dvfs::evaluation::{evaluate_suite, BenchmarkEvaluation, EvaluationConfig};
use mcd_sim::stats::RelativeMetrics;
use mcd_workloads::suite::{suite, Benchmark};
use std::sync::{Arc, OnceLock};

/// The slowdown target used for the headline results (the paper's Figures 4–7
/// use a dilation target of roughly 7%).
pub const HEADLINE_SLOWDOWN: f64 = 0.07;

/// Returns the benchmarks to evaluate. `quick` restricts the run to a
/// representative six-benchmark subset (useful while iterating); the full
/// suite is all nineteen programs.
pub fn selected_suite(quick: bool) -> Vec<Benchmark> {
    let all = suite();
    if !quick {
        return all;
    }
    let keep = [
        "adpcm decode",
        "epic encode",
        "jpeg compress",
        "mcf",
        "swim",
        "art",
    ];
    all.into_iter().filter(|b| keep.contains(&b.name)).collect()
}

/// True if the process arguments request a quick (subset) run.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "quick")
        || std::env::var("MCD_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// Worker threads used for suite evaluation: the `MCD_JOBS` environment
/// variable when set, otherwise every available core.
pub fn parallelism() -> usize {
    std::env::var("MCD_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// True if the process arguments or environment ask to bypass the artifact
/// cache (`--no-cache`, or `MCD_NO_CACHE=1`).
pub fn no_cache_requested() -> bool {
    std::env::args().any(|a| a == "--no-cache")
        || std::env::var("MCD_NO_CACHE")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// The artifact cache shared by every evaluation this process runs: resolved
/// once from `--no-cache` / `MCD_NO_CACHE` / `MCD_CACHE_DIR` (defaulting to
/// `.mcd-cache/`), so hit/miss counters accumulate across a binary's sweeps.
pub fn shared_cache() -> Arc<ArtifactCache> {
    static CACHE: OnceLock<Arc<ArtifactCache>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            if no_cache_requested() {
                Arc::new(ArtifactCache::disabled())
            } else {
                Arc::new(ArtifactCache::from_env())
            }
        })
        .clone()
}

/// Reports the shared cache's counters on stderr (machine-greppable, used by
/// the CI cold/warm smoke test) and appends them to the cache directory's
/// stats log so `cache_stats` can aggregate across processes.
pub fn report_cache() {
    let cache = shared_cache();
    if !cache.is_enabled() {
        return;
    }
    let s = cache.stats();
    if s.lookups() == 0 && s.writes == 0 {
        return;
    }
    eprintln!(
        "mcd-cache: hits={} misses={} writes={} errors={} dir={}",
        s.hits,
        s.misses,
        s.writes,
        s.errors,
        cache
            .dir()
            .expect("enabled cache has a directory")
            .display()
    );
    cache.flush_stats_log();
}

/// The default evaluation configuration used by the figure binaries.
pub fn default_config(include_global: bool) -> EvaluationConfig {
    EvaluationConfig {
        include_global,
        parallelism: parallelism(),
        ..EvaluationConfig::default()
    }
    .with_slowdown(HEADLINE_SLOWDOWN)
    .with_cache(shared_cache())
}

/// Evaluates every benchmark in `benches` under `config` through the scheme
/// registry, spreading benchmarks across `config.parallelism` threads.
pub fn evaluate_all(
    benches: &[Benchmark],
    config: &EvaluationConfig,
) -> Result<Vec<BenchmarkEvaluation>, McdError> {
    eprintln!(
        "  evaluating {} benchmark(s) on {} thread(s) ...",
        benches.len(),
        config.parallelism.max(1)
    );
    evaluate_suite(benches, config)
}

/// One of the paper's three headline metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Performance degradation relative to the MCD baseline (Figure 4).
    Slowdown,
    /// Energy savings relative to the MCD baseline (Figure 5).
    EnergySavings,
    /// Energy·delay improvement relative to the MCD baseline (Figure 6).
    EnergyDelay,
}

impl Metric {
    /// Extracts this metric from a set of relative metrics.
    pub fn of(self, m: &RelativeMetrics) -> f64 {
        match self {
            Metric::Slowdown => m.performance_degradation,
            Metric::EnergySavings => m.energy_savings,
            Metric::EnergyDelay => m.energy_delay_improvement,
        }
    }
}

/// Runs the standard per-benchmark, per-scheme figure: evaluates the selected
/// suite and prints one row per benchmark with one column per registered
/// scheme, plus a suite average (the shape of Figures 4–6).
pub fn metric_figure(title: &str, metric: Metric) -> Result<(), McdError> {
    let benches = selected_suite(quick_requested());
    let config = default_config(false);
    let evals = evaluate_all(&benches, &config)?;
    print_metric_table(title, &evals, metric);
    report_cache();
    Ok(())
}

/// Prints one per-benchmark, per-scheme metric table with a closing average
/// row. Columns come from the evaluation itself, so a new scheme in the
/// registry shows up without touching the binaries.
pub fn print_metric_table(title: &str, evals: &[BenchmarkEvaluation], metric: Metric) {
    println!("{title}");
    println!();
    let Some(first) = evals.first() else {
        println!("(no benchmarks selected)");
        return;
    };
    // Columns come from the first evaluation; later rows look schemes up by
    // name, so evaluations from a different registry print "-" instead of
    // misaligning (extra schemes in later rows are simply not shown).
    let schemes: Vec<(&str, &str)> = first
        .schemes
        .iter()
        .map(|o| (o.name.as_str(), o.label.as_str()))
        .collect();
    let mut columns: Vec<(&str, usize)> = vec![("Benchmark", 16)];
    for (_, label) in &schemes {
        columns.push((label, label.len().max(9)));
    }
    format::header(&columns);
    let mut sums = vec![Vec::new(); schemes.len()];
    for eval in evals {
        print!("{:>16}", eval.name);
        for (i, (name, label)) in schemes.iter().enumerate() {
            let width = label.len().max(9);
            match eval.result(name) {
                Some(result) => {
                    let value = metric.of(&result.metrics);
                    print!("  {:>width$}", format::pct(value));
                    sums[i].push(value);
                }
                None => print!("  {:>width$}", "-"),
            }
        }
        println!();
    }
    println!();
    print!("{:>16}", "average");
    for (i, (_, label)) in schemes.iter().enumerate() {
        print!(
            "  {:>width$}",
            format::pct(mean(&sums[i])),
            width = label.len().max(9)
        );
    }
    println!();
}

pub use mcd_dvfs::error::run_main;

/// Formatting helpers for the text tables the binaries print.
pub mod format {
    /// Formats a fraction as a percentage with one decimal.
    pub fn pct(fraction: f64) -> String {
        format!("{:6.1}%", fraction * 100.0)
    }

    /// Prints a header row followed by a separator of matching width.
    pub fn header(columns: &[(&str, usize)]) {
        let mut line = String::new();
        for (name, width) in columns {
            line.push_str(&format!("{name:>width$}  ", width = width));
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len().max(1)));
    }

    /// Pads a benchmark name to the standard column width.
    pub fn name_cell(name: &str) -> String {
        format!("{name:<16}")
    }
}

/// Simple arithmetic mean (returns zero for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_a_subset() {
        let quick = selected_suite(true);
        let full = selected_suite(false);
        assert_eq!(full.len(), 19);
        assert!(quick.len() < full.len());
        assert!(quick.len() >= 5);
        for b in &quick {
            assert!(full.iter().any(|f| f.name == b.name));
        }
    }

    #[test]
    fn default_config_uses_headline_slowdown() {
        let cfg = default_config(true);
        assert!((cfg.training.slowdown - HEADLINE_SLOWDOWN).abs() < 1e-12);
        assert!((cfg.offline.slowdown - HEADLINE_SLOWDOWN).abs() < 1e-12);
        assert!(cfg.include_global);
        assert!(cfg.parallelism >= 1);
    }

    #[test]
    fn mean_and_pct() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(format::pct(0.314).trim(), "31.4%");
    }

    #[test]
    fn metric_extracts_the_right_field() {
        let m = RelativeMetrics {
            performance_degradation: 0.05,
            energy_savings: 0.2,
            energy_delay_improvement: 0.16,
        };
        assert_eq!(Metric::Slowdown.of(&m), 0.05);
        assert_eq!(Metric::EnergySavings.of(&m), 0.2);
        assert_eq!(Metric::EnergyDelay.of(&m), 0.16);
    }
}
