//! Shared infrastructure for the benchmark harness that regenerates every
//! table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one table or figure; this library
//! provides the common pieces: the evaluation configuration, suite selection,
//! result caching across schemes, and plain-text table formatting that mirrors
//! the rows/series the paper reports.

#![warn(missing_docs)]

use mcd_dvfs::evaluation::{evaluate_benchmark, BenchmarkEvaluation, EvaluationConfig};
use mcd_workloads::suite::{suite, Benchmark};

/// The slowdown target used for the headline results (the paper's Figures 4–7
/// use a dilation target of roughly 7%).
pub const HEADLINE_SLOWDOWN: f64 = 0.07;

/// Returns the benchmarks to evaluate. `quick` restricts the run to a
/// representative six-benchmark subset (useful while iterating); the full
/// suite is all nineteen programs.
pub fn selected_suite(quick: bool) -> Vec<Benchmark> {
    let all = suite();
    if !quick {
        return all;
    }
    let keep = [
        "adpcm decode",
        "epic encode",
        "jpeg compress",
        "mcf",
        "swim",
        "art",
    ];
    all.into_iter()
        .filter(|b| keep.contains(&b.name))
        .collect()
}

/// True if the process arguments request a quick (subset) run.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "quick")
        || std::env::var("MCD_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// The default evaluation configuration used by the figure binaries.
pub fn default_config(include_global: bool) -> EvaluationConfig {
    EvaluationConfig {
        include_global,
        ..EvaluationConfig::default()
    }
    .with_slowdown(HEADLINE_SLOWDOWN)
}

/// Evaluates every benchmark in `benches` under `config`, printing progress to
/// stderr as it goes (the full suite takes a minute or two).
pub fn evaluate_all(benches: &[Benchmark], config: &EvaluationConfig) -> Vec<BenchmarkEvaluation> {
    benches
        .iter()
        .map(|b| {
            eprintln!("  evaluating {} ...", b.name);
            evaluate_benchmark(b, config)
        })
        .collect()
}

/// Formatting helpers for the text tables the binaries print.
pub mod format {
    /// Formats a fraction as a percentage with one decimal.
    pub fn pct(fraction: f64) -> String {
        format!("{:6.1}%", fraction * 100.0)
    }

    /// Prints a header row followed by a separator of matching width.
    pub fn header(columns: &[(&str, usize)]) {
        let mut line = String::new();
        for (name, width) in columns {
            line.push_str(&format!("{name:>width$}  ", width = width));
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len().max(1)));
    }

    /// Pads a benchmark name to the standard column width.
    pub fn name_cell(name: &str) -> String {
        format!("{name:<16}")
    }
}

/// Simple arithmetic mean (returns zero for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_a_subset() {
        let quick = selected_suite(true);
        let full = selected_suite(false);
        assert_eq!(full.len(), 19);
        assert!(quick.len() < full.len());
        assert!(quick.len() >= 5);
        for b in &quick {
            assert!(full.iter().any(|f| f.name == b.name));
        }
    }

    #[test]
    fn default_config_uses_headline_slowdown() {
        let cfg = default_config(true);
        assert!((cfg.training.slowdown - HEADLINE_SLOWDOWN).abs() < 1e-12);
        assert!((cfg.offline.slowdown - HEADLINE_SLOWDOWN).abs() < 1e-12);
        assert!(cfg.include_global);
    }

    #[test]
    fn mean_and_pct() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(format::pct(0.314).trim(), "31.4%");
    }
}
