//! One flag parser for every figure binary.
//!
//! Each binary used to hand-roll its own checks for `--quick`, `--no-cache`,
//! `--full` and the `MCD_*` environment variables; this module consolidates
//! them into [`Options::parse`], so a flag means the same thing everywhere
//! and new flags have exactly one place to live.

/// The flags and environment switches shared by the figure binaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Options {
    /// `--quick` / bare `quick` / `MCD_QUICK=1`: evaluate the representative
    /// six-benchmark subset instead of the full nineteen.
    pub quick: bool,
    /// `--full`: force the full suite in binaries (the sweeps) that default
    /// to the subset.
    pub full: bool,
    /// `--no-cache` / `MCD_NO_CACHE=1`: bypass the artifact cache.
    pub no_cache: bool,
    /// `--jobs N` / `MCD_JOBS=N`: worker-thread budget. `None` means "every
    /// available core" (see [`Options::parallelism`]).
    pub jobs: Option<usize>,
    /// Positional arguments that are not flags (e.g. a benchmark name).
    pub free: Vec<String>,
}

impl Options {
    /// Parses the process arguments and environment.
    pub fn parse() -> Options {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Options::from_args(&args, |key| std::env::var(key).ok())
    }

    /// Parses explicit arguments with an explicit environment lookup —
    /// the testable core of [`Options::parse`]. Flags win over environment
    /// variables; unknown arguments land in [`Options::free`].
    pub fn from_args(args: &[String], env: impl Fn(&str) -> Option<String>) -> Options {
        let mut options = Options::default();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" | "quick" => options.quick = true,
                "--full" => options.full = true,
                "--no-cache" => options.no_cache = true,
                "--jobs" => {
                    // Only consume the next argument when it really is a
                    // count, so `--jobs --quick` does not swallow the flag.
                    options.jobs = iter
                        .peek()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0);
                    if options.jobs.is_some() {
                        iter.next();
                    }
                }
                _ => options.free.push(arg.clone()),
            }
        }
        let env_flag = |key: &str| env(key).map(|v| v == "1").unwrap_or(false);
        options.quick = options.quick || env_flag("MCD_QUICK");
        options.no_cache = options.no_cache || env_flag("MCD_NO_CACHE");
        if options.jobs.is_none() {
            options.jobs = env("MCD_JOBS")
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0);
        }
        options
    }

    /// The worker-thread budget: `--jobs` / `MCD_JOBS` when given, otherwise
    /// every available core.
    pub fn parallelism(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_and_leftovers_stay_free() {
        let parsed = Options::from_args(
            &args(&["--quick", "--no-cache", "mpeg2 decode", "--full"]),
            no_env,
        );
        assert!(parsed.quick && parsed.no_cache && parsed.full);
        assert_eq!(parsed.free, vec!["mpeg2 decode".to_string()]);
        assert_eq!(parsed.jobs, None);
    }

    #[test]
    fn bare_quick_keyword_is_accepted() {
        let parsed = Options::from_args(&args(&["quick"]), no_env);
        assert!(parsed.quick);
        assert!(parsed.free.is_empty());
    }

    #[test]
    fn environment_backs_up_the_flags() {
        let env = |key: &str| match key {
            "MCD_QUICK" => Some("1".to_string()),
            "MCD_NO_CACHE" => Some("0".to_string()),
            "MCD_JOBS" => Some("3".to_string()),
            _ => None,
        };
        let parsed = Options::from_args(&[], env);
        assert!(parsed.quick);
        assert!(!parsed.no_cache);
        assert_eq!(parsed.jobs, Some(3));
        assert_eq!(parsed.parallelism(), 3);
    }

    #[test]
    fn explicit_jobs_flag_beats_the_environment() {
        let env = |key: &str| (key == "MCD_JOBS").then(|| "7".to_string());
        let parsed = Options::from_args(&args(&["--jobs", "2"]), env);
        assert_eq!(parsed.jobs, Some(2));
    }

    #[test]
    fn jobs_does_not_swallow_a_following_flag() {
        let parsed = Options::from_args(&args(&["--jobs", "--quick"]), no_env);
        assert_eq!(parsed.jobs, None);
        assert!(parsed.quick, "--quick must survive a valueless --jobs");
    }

    #[test]
    fn invalid_jobs_values_fall_back_to_auto() {
        let parsed = Options::from_args(&args(&["--jobs", "zero"]), no_env);
        assert_eq!(parsed.jobs, None);
        let env = |key: &str| (key == "MCD_JOBS").then(|| "0".to_string());
        let parsed = Options::from_args(&[], env);
        assert_eq!(parsed.jobs, None);
        assert!(parsed.parallelism() >= 1);
    }
}
