//! One flag parser for every figure binary.
//!
//! Each binary used to hand-roll its own checks for `--quick`, `--no-cache`,
//! `--full` and the `MCD_*` environment variables; this module consolidates
//! them into [`Options::parse`], so a flag means the same thing everywhere
//! and new flags have exactly one place to live.

use mcd_dvfs::error::McdError;

/// Which workload tier(s) a binary evaluates (`--suite` / `MCD_SUITE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuiteSelection {
    /// The paper's nineteen batch benchmarks (the default; `--quick` selects
    /// its representative six-benchmark subset).
    #[default]
    Paper,
    /// The three server-style request-loop benchmarks.
    Server,
    /// The three bursty/interactive benchmarks.
    Interactive,
    /// The whole second tier: server + interactive (six benchmarks).
    Tier2,
    /// Every tier (the paper's nineteen plus the second tier's six;
    /// `--quick` pairs the paper subset with the full second tier).
    All,
}

impl SuiteSelection {
    /// Parses a `--suite` value. Accepted (case-insensitive): `paper`
    /// (aliases `batch`, `spec`), `server`, `interactive`, `tier2` (aliases
    /// `second`, `server+interactive`), `all`.
    pub fn parse(value: &str) -> Result<SuiteSelection, McdError> {
        match value.to_lowercase().as_str() {
            "paper" | "batch" | "spec" => Ok(SuiteSelection::Paper),
            "server" => Ok(SuiteSelection::Server),
            "interactive" => Ok(SuiteSelection::Interactive),
            "tier2" | "second" | "server+interactive" => Ok(SuiteSelection::Tier2),
            "all" => Ok(SuiteSelection::All),
            other => Err(McdError::InvalidConfig(format!(
                "unknown --suite value `{other}` (expected paper, server, interactive, \
                 tier2 or all)"
            ))),
        }
    }
}

/// The flags and environment switches shared by the figure binaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Options {
    /// `--quick` / bare `quick` / `MCD_QUICK=1`: evaluate the representative
    /// six-benchmark subset instead of the full nineteen.
    pub quick: bool,
    /// `--full`: force the full suite in binaries (the sweeps) that default
    /// to the subset.
    pub full: bool,
    /// `--no-cache` / `MCD_NO_CACHE=1`: bypass the artifact cache.
    pub no_cache: bool,
    /// `--jobs N` / `MCD_JOBS=N`: worker-thread budget. `None` means "every
    /// available core" (see [`Options::parallelism`]).
    pub jobs: Option<usize>,
    /// `--suite <tier>` / `MCD_SUITE=<tier>`: raw workload-tier selection
    /// (validated by [`Options::suite_selection`]). `None` means the
    /// binary's default tier.
    pub suite: Option<String>,
    /// Positional arguments that are not flags (e.g. a benchmark name).
    pub free: Vec<String>,
}

impl Options {
    /// Parses the process arguments and environment.
    pub fn parse() -> Options {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Options::from_args(&args, |key| std::env::var(key).ok())
    }

    /// Parses explicit arguments with an explicit environment lookup —
    /// the testable core of [`Options::parse`]. Flags win over environment
    /// variables; unknown arguments land in [`Options::free`].
    pub fn from_args(args: &[String], env: impl Fn(&str) -> Option<String>) -> Options {
        let mut options = Options::default();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" | "quick" => options.quick = true,
                "--full" => options.full = true,
                "--no-cache" => options.no_cache = true,
                "--jobs" => {
                    // Only consume the next argument when it really is a
                    // count, so `--jobs --quick` does not swallow the flag.
                    options.jobs = iter
                        .peek()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0);
                    if options.jobs.is_some() {
                        iter.next();
                    }
                }
                "--suite" => {
                    // Only consume the next argument when it is a value, so
                    // `--suite --quick` does not swallow the flag.
                    options.suite = iter
                        .peek()
                        .filter(|v| !v.starts_with("--"))
                        .map(|v| v.to_string());
                    if options.suite.is_some() {
                        iter.next();
                    }
                }
                _ => options.free.push(arg.clone()),
            }
        }
        let env_flag = |key: &str| env(key).map(|v| v == "1").unwrap_or(false);
        options.quick = options.quick || env_flag("MCD_QUICK");
        options.no_cache = options.no_cache || env_flag("MCD_NO_CACHE");
        if options.jobs.is_none() {
            options.jobs = env("MCD_JOBS")
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0);
        }
        if options.suite.is_none() {
            options.suite = env("MCD_SUITE").filter(|v| !v.is_empty());
        }
        options
    }

    /// The validated workload-tier selection, defaulting to `default` when
    /// neither `--suite` nor `MCD_SUITE` was given.
    pub fn suite_selection(&self, default: SuiteSelection) -> Result<SuiteSelection, McdError> {
        match &self.suite {
            Some(value) => SuiteSelection::parse(value),
            None => Ok(default),
        }
    }

    /// The worker-thread budget: `--jobs` / `MCD_JOBS` when given, otherwise
    /// every available core.
    pub fn parallelism(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_env(_: &str) -> Option<String> {
        None
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_and_leftovers_stay_free() {
        let parsed = Options::from_args(
            &args(&["--quick", "--no-cache", "mpeg2 decode", "--full"]),
            no_env,
        );
        assert!(parsed.quick && parsed.no_cache && parsed.full);
        assert_eq!(parsed.free, vec!["mpeg2 decode".to_string()]);
        assert_eq!(parsed.jobs, None);
    }

    #[test]
    fn bare_quick_keyword_is_accepted() {
        let parsed = Options::from_args(&args(&["quick"]), no_env);
        assert!(parsed.quick);
        assert!(parsed.free.is_empty());
    }

    #[test]
    fn environment_backs_up_the_flags() {
        let env = |key: &str| match key {
            "MCD_QUICK" => Some("1".to_string()),
            "MCD_NO_CACHE" => Some("0".to_string()),
            "MCD_JOBS" => Some("3".to_string()),
            _ => None,
        };
        let parsed = Options::from_args(&[], env);
        assert!(parsed.quick);
        assert!(!parsed.no_cache);
        assert_eq!(parsed.jobs, Some(3));
        assert_eq!(parsed.parallelism(), 3);
    }

    #[test]
    fn explicit_jobs_flag_beats_the_environment() {
        let env = |key: &str| (key == "MCD_JOBS").then(|| "7".to_string());
        let parsed = Options::from_args(&args(&["--jobs", "2"]), env);
        assert_eq!(parsed.jobs, Some(2));
    }

    #[test]
    fn jobs_does_not_swallow_a_following_flag() {
        let parsed = Options::from_args(&args(&["--jobs", "--quick"]), no_env);
        assert_eq!(parsed.jobs, None);
        assert!(parsed.quick, "--quick must survive a valueless --jobs");
    }

    #[test]
    fn suite_flag_parses_and_validates() {
        let parsed = Options::from_args(&args(&["--suite", "server", "--quick"]), no_env);
        assert_eq!(parsed.suite.as_deref(), Some("server"));
        assert_eq!(
            parsed.suite_selection(SuiteSelection::Paper).unwrap(),
            SuiteSelection::Server
        );
        // Aliases and case-insensitivity.
        for (value, want) in [
            ("Paper", SuiteSelection::Paper),
            ("batch", SuiteSelection::Paper),
            ("tier2", SuiteSelection::Tier2),
            ("second", SuiteSelection::Tier2),
            ("INTERACTIVE", SuiteSelection::Interactive),
            ("all", SuiteSelection::All),
        ] {
            assert_eq!(SuiteSelection::parse(value).unwrap(), want, "{value}");
        }
        // Unknown values surface as configuration errors.
        assert!(SuiteSelection::parse("bogus").is_err());
        // Default applies when the flag is absent.
        let parsed = Options::from_args(&[], no_env);
        assert_eq!(
            parsed.suite_selection(SuiteSelection::Tier2).unwrap(),
            SuiteSelection::Tier2
        );
    }

    #[test]
    fn suite_does_not_swallow_a_following_flag_and_env_backs_it_up() {
        let parsed = Options::from_args(&args(&["--suite", "--quick"]), no_env);
        assert_eq!(parsed.suite, None);
        assert!(parsed.quick, "--quick must survive a valueless --suite");
        let env = |key: &str| (key == "MCD_SUITE").then(|| "interactive".to_string());
        let parsed = Options::from_args(&[], env);
        assert_eq!(parsed.suite.as_deref(), Some("interactive"));
        let parsed = Options::from_args(&args(&["--suite", "server"]), env);
        assert_eq!(parsed.suite.as_deref(), Some("server"), "flag beats env");
    }

    #[test]
    fn invalid_jobs_values_fall_back_to_auto() {
        let parsed = Options::from_args(&args(&["--jobs", "zero"]), no_env);
        assert_eq!(parsed.jobs, None);
        let env = |key: &str| (key == "MCD_JOBS").then(|| "0".to_string());
        let parsed = Options::from_args(&[], env);
        assert_eq!(parsed.jobs, None);
        assert!(parsed.parallelism() >= 1);
    }
}
