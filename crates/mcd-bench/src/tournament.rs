//! The controller tournament: every registered scheme, every suite tier, one
//! batched [`Evaluator`], one ranked scheme × benchmark matrix.
//!
//! [`run`] evaluates the selected benchmarks with the full registry (the
//! paper's four schemes plus the controller zoo) through one [`Evaluator`],
//! submitting each benchmark as a single batch so the batched simulation
//! path — shared baselines, pooled capture/training passes, multi-lane trace
//! passes — carries the whole tournament. [`render`] is a pure function from
//! the evaluations to the report text, so the output is byte-stable across
//! runs, across cold/warm caches, and across `--jobs` values (the snapshot
//! test and the CI smoke both rely on this).
//!
//! The report has two parts: the three per-benchmark metric matrices
//! (slowdown, energy savings, energy·delay improvement — the shape of
//! Figures 4–6, widened to every scheme), and ranking tables per suite tier
//! plus overall, ordered by mean energy·delay improvement (the metric the
//! paper treats as the headline trade-off).

use crate::{format, Metric};
use mcd_dvfs::error::McdError;
use mcd_dvfs::evaluation::{BenchmarkEvaluation, EvaluationConfig, Summary};
use mcd_dvfs::service::{EvalJob, Evaluator};
use mcd_workloads::suite::{self, Benchmark, SuiteKind};

/// Evaluates `benches` under `config` through one batched [`Evaluator`] —
/// each benchmark is submitted as a single batch, so every scheme family
/// rides the batched simulation path — and reports the evaluator's batch
/// counters on stderr (`mcd-batch: ...`, machine-greppable like the cache
/// line). Evaluations return in submission order.
pub fn run(
    benches: &[Benchmark],
    config: &EvaluationConfig,
) -> Result<Vec<BenchmarkEvaluation>, McdError> {
    eprintln!(
        "  tournament: {} benchmark(s) on {} thread(s) ...",
        benches.len(),
        config.parallelism.max(1)
    );
    let workers = config.parallelism.max(1).min(benches.len().max(1));
    let evaluator = Evaluator::builder()
        .config(config.clone())
        .workers(workers)
        .build();
    let mut streams = Vec::with_capacity(benches.len());
    for bench in benches {
        let batch = EvalJob::batch(vec![EvalJob::new(bench.clone())])?;
        streams.push(evaluator.submit_batch(batch));
    }
    let mut evals = Vec::with_capacity(streams.len());
    for stream in streams {
        evals.extend(crate::collect_streaming(stream)?);
    }
    let b = evaluator.batch_stats();
    eprintln!(
        "mcd-batch: groups={} members={} passes={} lanes={} baselines_computed={} \
         baselines_reused={}",
        b.groups, b.members, b.passes, b.lanes, b.baselines_computed, b.baselines_reused
    );
    Ok(evals)
}

/// One scheme's aggregate over a set of benchmarks: the per-metric means the
/// ranking tables report.
#[derive(Debug, Clone)]
struct SchemeAggregate {
    name: String,
    label: String,
    slowdown: f64,
    energy: f64,
    energy_delay: f64,
    covered: usize,
}

/// The scheme columns of the tournament: union across evaluations in
/// first-appearance order (one registry → registry order).
fn columns(evals: &[BenchmarkEvaluation]) -> Vec<(String, String)> {
    let mut columns: Vec<(String, String)> = Vec::new();
    for eval in evals {
        for outcome in &eval.schemes {
            if !columns.iter().any(|(name, _)| *name == outcome.name) {
                columns.push((outcome.name.clone(), outcome.label.clone()));
            }
        }
    }
    columns
}

/// Builds one metric matrix (benchmark rows × scheme columns, closing
/// average row) as a string — the textual shape of
/// [`crate::print_metric_table`], rendered instead of printed.
fn metric_matrix(title: &str, evals: &[BenchmarkEvaluation], metric: Metric) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push_str("\n\n");
    let schemes = columns(evals);
    let mut header = format!("{:>16}", "Benchmark");
    for (_, label) in &schemes {
        header.push_str(&format!("  {:>width$}", label, width = label.len().max(9)));
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    let mut sums = vec![Vec::new(); schemes.len()];
    for eval in evals {
        out.push_str(&format!("{:>16}", eval.name));
        for (i, (name, label)) in schemes.iter().enumerate() {
            let width = label.len().max(9);
            match eval.result(name) {
                Some(result) => {
                    let value = metric.of(&result.metrics);
                    out.push_str(&format!("  {:>width$}", format::pct(value)));
                    sums[i].push(value);
                }
                None => out.push_str(&format!("  {:>width$}", "-")),
            }
        }
        out.push('\n');
    }
    out.push('\n');
    out.push_str(&format!("{:>16}", "average"));
    for (i, (_, label)) in schemes.iter().enumerate() {
        out.push_str(&format!(
            "  {:>width$}",
            format::pct(Summary::of(&sums[i]).mean),
            width = label.len().max(9)
        ));
    }
    out.push('\n');
    out
}

/// Aggregates each scheme over `evals`, ranked by mean energy·delay
/// improvement (descending; ties break on the scheme name so the order is
/// total and stable).
fn ranking(evals: &[BenchmarkEvaluation]) -> Vec<SchemeAggregate> {
    let mut aggregates: Vec<SchemeAggregate> = Vec::new();
    for (name, label) in columns(evals) {
        let mut slowdown = Vec::new();
        let mut energy = Vec::new();
        let mut energy_delay = Vec::new();
        for eval in evals {
            if let Some(result) = eval.result(&name) {
                slowdown.push(result.metrics.performance_degradation);
                energy.push(result.metrics.energy_savings);
                energy_delay.push(result.metrics.energy_delay_improvement);
            }
        }
        if energy_delay.is_empty() {
            continue;
        }
        aggregates.push(SchemeAggregate {
            name,
            label,
            slowdown: Summary::of(&slowdown).mean,
            energy: Summary::of(&energy).mean,
            energy_delay: Summary::of(&energy_delay).mean,
            covered: energy_delay.len(),
        });
    }
    aggregates.sort_by(|a, b| {
        b.energy_delay
            .partial_cmp(&a.energy_delay)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    aggregates
}

/// Renders one ranking table (rank, scheme, per-metric means, coverage).
fn ranking_table(title: &str, evals: &[BenchmarkEvaluation]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push_str("\n\n");
    let header = format!(
        "{:>4}  {:<14}{:>10}{:>10}{:>14}{:>8}",
        "rank", "scheme", "slowdown", "energy", "energy-delay", "n"
    );
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for (i, agg) in ranking(evals).iter().enumerate() {
        out.push_str(&format!(
            "{:>4}  {:<14}{:>10}{:>10}{:>14}{:>8}\n",
            i + 1,
            agg.label,
            format::pct(agg.slowdown).trim(),
            format::pct(agg.energy).trim(),
            format::pct(agg.energy_delay).trim(),
            agg.covered
        ));
    }
    out
}

/// The ranking tier a named benchmark belongs to (`None` for a name outside
/// the registered suites — such rows only join the overall ranking). The
/// paper's three source suites (MediaBench, SPECint, SPECfp) rank as one
/// tier, matching how the figures aggregate them.
fn tier_of(name: &str) -> Option<Tier> {
    Some(match suite::benchmark(name)?.suite {
        SuiteKind::MediaBench | SuiteKind::SpecInt | SuiteKind::SpecFp => Tier::Paper,
        SuiteKind::Server => Tier::Server,
        SuiteKind::Interactive => Tier::Interactive,
    })
}

/// The three ranking tiers of the tournament report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Paper,
    Server,
    Interactive,
}

/// Renders the full tournament report: the three metric matrices over every
/// benchmark, then ranking tables per populated suite tier and overall. Pure
/// and deterministic in `evals`, so equal inputs render byte-identical text.
pub fn render(evals: &[BenchmarkEvaluation]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "MCD controller tournament — {} benchmark(s), {} scheme(s)\n\n",
        evals.len(),
        columns(evals).len()
    ));
    out.push_str(&metric_matrix(
        "== Slowdown (performance degradation vs MCD baseline) ==",
        evals,
        Metric::Slowdown,
    ));
    out.push('\n');
    out.push_str(&metric_matrix(
        "== Energy savings vs MCD baseline ==",
        evals,
        Metric::EnergySavings,
    ));
    out.push('\n');
    out.push_str(&metric_matrix(
        "== Energy-delay improvement vs MCD baseline ==",
        evals,
        Metric::EnergyDelay,
    ));
    out.push('\n');
    for (kind, title) in [
        (Tier::Paper, "== Ranking: paper tier =="),
        (Tier::Server, "== Ranking: server tier =="),
        (Tier::Interactive, "== Ranking: interactive tier =="),
    ] {
        let tier: Vec<BenchmarkEvaluation> = evals
            .iter()
            .filter(|e| tier_of(&e.name) == Some(kind))
            .cloned()
            .collect();
        if tier.is_empty() {
            continue;
        }
        out.push_str(&ranking_table(title, &tier));
        out.push('\n');
    }
    out.push_str(&ranking_table("== Ranking: overall ==", evals));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_dvfs::evaluation::SchemeResult;
    use mcd_dvfs::scheme::SchemeOutcome;
    use mcd_sim::stats::{RelativeMetrics, SimStats};

    fn eval_with(bench: &str, schemes: &[(&str, f64)]) -> BenchmarkEvaluation {
        BenchmarkEvaluation {
            name: bench.to_string(),
            baseline: SimStats::default(),
            schemes: schemes
                .iter()
                .map(|(name, ed)| SchemeOutcome {
                    name: name.to_string(),
                    label: name.to_string(),
                    result: SchemeResult {
                        stats: SimStats::default(),
                        metrics: RelativeMetrics {
                            performance_degradation: 0.05,
                            energy_savings: 0.2,
                            energy_delay_improvement: *ed,
                        },
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn ranking_orders_by_mean_energy_delay_with_name_tiebreak() {
        let evals = vec![
            eval_with("adpcm decode", &[("online", 0.10), ("pid", 0.30)]),
            eval_with("mcf", &[("online", 0.20), ("pid", 0.20)]),
        ];
        let ranked = ranking(&evals);
        assert_eq!(ranked[0].name, "pid");
        assert!((ranked[0].energy_delay - 0.25).abs() < 1e-12);
        assert_eq!(ranked[1].name, "online");
        // Exact tie ranks alphabetically.
        let tied = vec![eval_with("mcf", &[("b", 0.1), ("a", 0.1)])];
        let ranked = ranking(&tied);
        assert_eq!(ranked[0].name, "a");
        assert_eq!(ranked[1].name, "b");
    }

    #[test]
    fn render_is_deterministic_and_covers_every_tier_present() {
        let evals = vec![
            eval_with("adpcm decode", &[("online", 0.1)]),
            eval_with("web serve", &[("online", 0.2)]),
            eval_with("sensor hub", &[("online", 0.3)]),
        ];
        let a = render(&evals);
        let b = render(&evals);
        assert_eq!(a, b, "render must be pure");
        assert!(a.contains("== Ranking: paper tier =="));
        assert!(a.contains("== Ranking: server tier =="));
        assert!(a.contains("== Ranking: interactive tier =="));
        assert!(a.contains("== Ranking: overall =="));
        // A paper-tier-only panel renders no empty tier sections.
        let paper_only = render(&[eval_with("mcf", &[("online", 0.1)])]);
        assert!(!paper_only.contains("server tier"));
        assert!(!paper_only.contains("interactive tier"));
    }

    #[test]
    fn schemes_missing_from_a_row_do_not_poison_the_aggregates() {
        let evals = vec![
            eval_with("adpcm decode", &[("online", 0.1), ("pid", 0.4)]),
            eval_with("mcf", &[("online", 0.2)]),
        ];
        let ranked = ranking(&evals);
        let pid = ranked.iter().find(|a| a.name == "pid").expect("pid ranked");
        assert_eq!(pid.covered, 1);
        assert!((pid.energy_delay - 0.4).abs() < 1e-12);
        let online = ranked.iter().find(|a| a.name == "online").unwrap();
        assert_eq!(online.covered, 2);
    }
}
