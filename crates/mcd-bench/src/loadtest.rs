//! The synthetic evaluation-service load: one job stream, two submission
//! disciplines, and the measurements the load-test harness reports.
//!
//! The stream mixes workload tiers and priority classes the way a shared
//! evaluation service would see them: three benchmarks — one batch
//! (`adpcm decode`), one server (`kv store`), one interactive (`sensor hub`)
//! — each swept over evenly spaced slowdown targets under the off-line and
//! profile schemes, with [`Priority`] cycling through all three classes.
//! Every runner evaluates the *same* canonical job list (benchmark-major,
//! slowdown-minor), so their per-job metrics are directly comparable:
//!
//! * [`run_serial`] submits each configuration as its own independent job —
//!   the throughput of a client that never batches;
//! * [`run_batched`] groups each benchmark's points into one
//!   [`EvalJob::batch`] group — one capture/training pass feeding all lanes;
//! * [`run_admission`] pushes the stream through a bounded, rate-limited
//!   front-end ([`Evaluator::try_submit_all`]) and tallies the explicit
//!   queued/rejected outcomes;
//! * [`run_chaos`] replays the stream under a seeded fault plan
//!   ([`FaultConfig::chaos`]) — injected read/write errors, torn writes,
//!   lock stalls and worker panics — and records per-job outcomes so the
//!   harness can assert the self-healing invariants: every job reaches
//!   exactly one terminal event, every *surviving* job's metrics are
//!   bit-identical to the fault-free run's ([`job_digest`]), and the cache
//!   directory holds only well-formed artifacts afterwards
//!   ([`check_cache_integrity`]).
//!
//! Each run reports wall-clock throughput, queue-latency and
//! completion-latency percentiles (p50/p95/p99 from per-job
//! [`EvalEvent::JobStarted`] and terminal events), and an order-insensitive
//! check of result *identity*: [`metrics_digest`] folds every job's scheme
//! metrics bit-for-bit into one FNV-1a fingerprint, so two runs produced the
//! same numbers iff their digests match. The batched runner must therefore
//! beat the serial runner on throughput while hashing to the same digest —
//! the load-test harness's two headline gates.

use mcd_dvfs::artifact::{verify_envelope, ArtifactCache};
use mcd_dvfs::error::{find_benchmark, McdError};
use mcd_dvfs::evaluation::{BenchmarkEvaluation, EvaluationConfig};
use mcd_dvfs::scheme::names;
use mcd_dvfs::service::{
    Admission, EvalEvent, EvalJob, Evaluator, Priority, RejectReason, ResultStream,
};
use mcd_dvfs::{FaultConfig, FaultPlan, FaultStats, RetryPolicy, RetryStats};
use mcd_sim::fingerprint::Fnv1a;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The stream's benchmarks: one per workload tier (batch, server,
/// interactive), so a single run exercises heterogeneous job costs.
pub const STREAM_BENCHMARKS: [&str; 3] = ["adpcm decode", "kv store", "sensor hub"];

/// Slowdown points per benchmark in the default (non-smoke) stream. Sized
/// so the batched submission path's amortisation is fully visible: the
/// per-benchmark capture/training cost is shared across enough lanes that
/// batched throughput clears the 4x-over-serial gate with headroom.
pub const DEFAULT_POINTS: usize = 32;

/// The first slowdown target of the sweep and the spacing between points.
const SLOWDOWN_BASE: f64 = 0.02;
const SLOWDOWN_STEP: f64 = 0.01;

/// Builds the canonical job stream: for every stream benchmark, `points`
/// evenly spaced slowdown targets under the off-line + profile schemes, with
/// the priority class cycling through interactive/batch/background. The list
/// is benchmark-major, slowdown-minor — the order every runner's evaluations
/// come back in, and the order [`metrics_digest`] folds them in.
pub fn stream_jobs(points: usize) -> Result<Vec<EvalJob>, McdError> {
    let mut jobs = Vec::with_capacity(STREAM_BENCHMARKS.len() * points);
    for (b, name) in STREAM_BENCHMARKS.iter().enumerate() {
        let bench = find_benchmark(name)?;
        for i in 0..points {
            let priority = match (b + i) % 3 {
                0 => Priority::Interactive,
                1 => Priority::Batch,
                _ => Priority::Background,
            };
            jobs.push(
                EvalJob::new(bench.clone())
                    .with_slowdown(SLOWDOWN_BASE + SLOWDOWN_STEP * i as f64)
                    .with_schemes([names::OFFLINE, names::PROFILE])
                    .with_priority(priority),
            );
        }
    }
    Ok(jobs)
}

/// The evaluation configuration the cold (cache-disabled) load stages use:
/// single simulation thread, default machine, no artifact cache — every job's
/// cost is pure compute, so serial-vs-batched is an apples-to-apples
/// comparison.
pub fn cold_config() -> EvaluationConfig {
    EvaluationConfig {
        parallelism: 1,
        ..EvaluationConfig::default()
    }
}

/// Latency percentiles over one run's per-job samples, in milliseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed sample.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarises a sample set (nearest-rank percentiles). Empty samples
    /// yield all-zero summaries.
    pub fn from_samples(samples: &mut [f64]) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        LatencySummary {
            p50_ms: percentile(samples, 50.0),
            p95_ms: percentile(samples, 95.0),
            p99_ms: percentile(samples, 99.0),
            max_ms: samples[samples.len() - 1],
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted, non-empty sample set.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// One runner's measurements over the full stream.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Jobs evaluated.
    pub jobs: usize,
    /// End-to-end wall clock, submission of the first job to the last
    /// terminal event.
    pub wall: Duration,
    /// Queue latency: submission to `JobStarted`, per job.
    pub queue: LatencySummary,
    /// Completion latency: submission of the stream to the job's terminal
    /// event, per job.
    pub completion: LatencySummary,
    /// [`metrics_digest`] over the evaluations in canonical stream order.
    pub digest: u64,
}

impl RunReport {
    /// Jobs per second over the whole run.
    pub fn throughput(&self) -> f64 {
        self.jobs as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Serial submission: every configuration is its own single-job entry — no
/// batching, so each job pays its full capture/training cost (baselines are
/// still memoised process-wide, exactly as a non-batching client would see).
pub fn run_serial(config: &EvaluationConfig, jobs: Vec<EvalJob>) -> Result<RunReport, McdError> {
    let evaluator = Evaluator::builder()
        .config(config.clone())
        .workers(1)
        .build();
    let count = jobs.len();
    let start = Instant::now();
    let stream = evaluator.submit_all(jobs);
    drain_run(vec![stream], count, start)
}

/// Batched submission: each benchmark's points become one
/// [`EvalJob::batch`] group, sharing a single capture/training pass across
/// all slowdown lanes. Groups are submitted in stream order, so the
/// concatenated evaluations land in the same canonical order as
/// [`run_serial`]'s.
pub fn run_batched(config: &EvaluationConfig, jobs: Vec<EvalJob>) -> Result<RunReport, McdError> {
    run_batched_with_faults(config, jobs, Arc::new(FaultPlan::disabled()))
}

/// [`run_batched`] with an explicit (typically disabled) fault plan
/// installed in the evaluator — the `perf_report` `fault_off_overhead`
/// stage's subject: the injection hooks are runtime-gated, so a disabled
/// plan threaded through the full hot path must cost nothing measurable
/// against [`run_batched`] itself.
pub fn run_batched_with_faults(
    config: &EvaluationConfig,
    jobs: Vec<EvalJob>,
    faults: Arc<FaultPlan>,
) -> Result<RunReport, McdError> {
    let evaluator = Evaluator::builder()
        .config(config.clone())
        .workers(1)
        .faults(faults)
        .build();
    let count = jobs.len();
    let mut groups: Vec<(String, Vec<EvalJob>)> = Vec::new();
    for job in jobs {
        let name = job.benchmark().name.to_string();
        match groups.last_mut() {
            Some((last, members)) if *last == name => members.push(job),
            _ => groups.push((name, vec![job])),
        }
    }
    let start = Instant::now();
    let streams = groups
        .into_iter()
        .map(|(_, members)| Ok(evaluator.submit_batch(EvalJob::batch(members)?)))
        .collect::<Result<Vec<_>, McdError>>()?;
    drain_run(streams, count, start)
}

/// Drains the runs' streams in submission order, folding per-job latencies
/// and the canonical-order metrics digest into one [`RunReport`].
fn drain_run(
    streams: Vec<ResultStream>,
    jobs: usize,
    start: Instant,
) -> Result<RunReport, McdError> {
    let mut queue_ms = Vec::with_capacity(jobs);
    let mut completion_ms = Vec::with_capacity(jobs);
    let mut evals: Vec<BenchmarkEvaluation> = Vec::with_capacity(jobs);
    for stream in streams {
        evals.extend(stream.collect_with(|event| match event {
            EvalEvent::JobStarted { queued_for, .. } => {
                queue_ms.push(queued_for.as_secs_f64() * 1e3);
            }
            EvalEvent::JobCompleted { .. } | EvalEvent::JobFailed { .. } => {
                completion_ms.push(start.elapsed().as_secs_f64() * 1e3);
            }
            _ => {}
        })?);
    }
    let wall = start.elapsed();
    Ok(RunReport {
        jobs,
        wall,
        queue: LatencySummary::from_samples(&mut queue_ms),
        completion: LatencySummary::from_samples(&mut completion_ms),
        digest: metrics_digest(&evals),
    })
}

/// An FNV-1a fingerprint over every evaluation's per-scheme metrics, folded
/// in the given (canonical) order with full `f64` bit patterns — equal
/// digests mean bit-identical per-job results.
pub fn metrics_digest(evals: &[BenchmarkEvaluation]) -> u64 {
    let mut h = Fnv1a::new();
    for eval in evals {
        h.write_str(&eval.name);
        h.write_f64(eval.baseline.run_time.as_ns());
        h.write_f64(eval.baseline.total_energy.as_units());
        for outcome in &eval.schemes {
            h.write_str(&outcome.name);
            h.write_f64(outcome.result.stats.run_time.as_ns());
            h.write_f64(outcome.result.stats.total_energy.as_units());
            h.write_f64(outcome.result.metrics.performance_degradation);
            h.write_f64(outcome.result.metrics.energy_savings);
            h.write_f64(outcome.result.metrics.energy_delay_improvement);
        }
    }
    h.finish()
}

/// One job's digest — [`metrics_digest`] over a single evaluation — so a
/// chaos run can compare each *surviving* job bit-for-bit against the
/// fault-free run at the same canonical stream index.
pub fn job_digest(eval: &BenchmarkEvaluation) -> u64 {
    metrics_digest(std::slice::from_ref(eval))
}

/// What one [`run_chaos`] pass observed, per-job and in aggregate.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that completed despite the fault plan.
    pub completed: usize,
    /// Jobs that failed on an *injected* fault (a worker panic surfacing as
    /// [`McdError::Fault`], or exhausted artifact retries as
    /// [`McdError::Io`]).
    pub faulted: usize,
    /// Failures NOT attributable to injection — rendered errors the harness
    /// must treat as real bugs. Empty on a healthy run.
    pub unexpected: Vec<String>,
    /// Jobs that saw zero or more than one terminal event. Zero on a
    /// healthy run: panic isolation must deliver exactly one terminal per
    /// job, never strand and never double-report.
    pub double_terminals: usize,
    /// Per canonical stream index: `Some(job_digest)` for completed jobs,
    /// `None` for faulted ones.
    pub digests: Vec<Option<u64>>,
    /// The fault plan's draw/injection counters at drain time.
    pub faults: FaultStats,
    /// The cache's retry counters (transient-I/O recoveries vs exhaustions).
    pub retry: RetryStats,
    /// End-to-end wall clock.
    pub wall: Duration,
}

/// Replays the canonical stream under a fault plan built from `fault_config`
/// (typically [`FaultConfig::chaos`]; pass [`FaultConfig::default`] for a
/// disabled-plan reference run through the identical machinery). The plan is
/// shared between the evaluator (lock stalls, worker panics) and an artifact
/// cache on `cache_dir` (read/write errors, short and torn reads/writes)
/// with the default retry policy. Each job is submitted individually so a
/// panicking job's blast radius is visible per-index; the same seed always
/// injects the same faults at the same per-site draw counts, independent of
/// thread interleaving.
pub fn run_chaos(
    cache_dir: &Path,
    jobs: Vec<EvalJob>,
    fault_config: FaultConfig,
    workers: usize,
) -> Result<ChaosReport, McdError> {
    let faults = Arc::new(FaultPlan::new(fault_config));
    let cache = Arc::new(
        ArtifactCache::new(cache_dir)
            .with_faults(Arc::clone(&faults))
            .with_retry(RetryPolicy::new(3)),
    );
    let config = EvaluationConfig {
        parallelism: 1,
        ..EvaluationConfig::default()
    }
    .with_cache(Arc::clone(&cache));
    let evaluator = Evaluator::builder()
        .config(config)
        .workers(workers)
        .faults(Arc::clone(&faults))
        .build();
    let count = jobs.len();
    let start = Instant::now();
    let stream = evaluator.submit_all(jobs);
    let order = stream.jobs().to_vec();
    let mut terminals: HashMap<mcd_dvfs::service::JobId, u32> = HashMap::new();
    let mut digests_by_id = HashMap::new();
    let mut faulted = 0usize;
    let mut unexpected = Vec::new();
    for event in stream {
        if event.is_terminal() {
            *terminals.entry(event.job()).or_default() += 1;
        }
        match event {
            EvalEvent::JobCompleted { job, evaluation } => {
                digests_by_id.insert(job, job_digest(&evaluation));
            }
            EvalEvent::JobFailed { error, .. } => match error {
                McdError::Fault { .. } | McdError::Io { .. } => faulted += 1,
                other => unexpected.push(other.to_string()),
            },
            _ => {}
        }
    }
    // Join the workers before inspecting the directory: a live worker could
    // still hold a publication lock or an in-flight temp file.
    drop(evaluator);
    let wall = start.elapsed();
    let digests: Vec<Option<u64>> = order
        .iter()
        .map(|id| digests_by_id.get(id).copied())
        .collect();
    let double_terminals = order
        .iter()
        .filter(|id| terminals.get(id).copied().unwrap_or(0) != 1)
        .count();
    Ok(ChaosReport {
        jobs: count,
        completed: digests_by_id.len(),
        faulted,
        unexpected,
        double_terminals,
        digests,
        faults: faults.stats(),
        retry: cache.retry_stats(),
        wall,
    })
}

/// The cache directory's on-disk state after a chaos run: every published
/// artifact must pass the codec's envelope check (magic, version, checksum —
/// a torn write can never be mistaken for a publication), and no publication
/// debris (`.lock-*` / `.tmp-*` files) may outlive the evaluator.
#[derive(Debug, Clone, Default)]
pub struct CacheIntegrity {
    /// Published artifacts found.
    pub artifacts: usize,
    /// Artifact files whose envelope failed verification.
    pub corrupt: Vec<String>,
    /// Lock or temp files left behind.
    pub stranded: Vec<String>,
}

impl CacheIntegrity {
    /// True when every artifact verified and nothing was stranded.
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty() && self.stranded.is_empty()
    }
}

/// Scans `cache_dir` for the two classes of fault damage a crash-consistent
/// store must rule out: torn artifacts (checksum/envelope mismatch) and
/// stranded publication debris.
pub fn check_cache_integrity(cache_dir: &Path) -> CacheIntegrity {
    let mut integrity = CacheIntegrity::default();
    for entry in ArtifactCache::new(cache_dir).entries() {
        integrity.artifacts += 1;
        let ok = std::fs::read(cache_dir.join(&entry.name))
            .map(|bytes| verify_envelope(&entry.kind, &bytes).is_ok())
            .unwrap_or(false);
        if !ok {
            integrity.corrupt.push(entry.name);
        }
    }
    let listing = std::fs::read_dir(cache_dir)
        .map(|dir| dir.flatten().collect::<Vec<_>>())
        .unwrap_or_default();
    for entry in listing {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(".lock-") || name.starts_with(".tmp-") {
            integrity.stranded.push(name);
        }
    }
    integrity
}

/// The admission phase's tally: how the bounded front-end disposed of the
/// stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionOutcome {
    /// Jobs admitted and completed.
    pub completed: usize,
    /// Jobs rejected because the queue was at capacity.
    pub rejected_queue_full: usize,
    /// Jobs rejected by the token-bucket rate limiter.
    pub rejected_rate_limited: usize,
}

impl AdmissionOutcome {
    /// Total rejections, either cause.
    pub fn rejected(&self) -> usize {
        self.rejected_queue_full + self.rejected_rate_limited
    }
}

/// Fires the stream at a bounded front-end as fast as the submission loop
/// can go — `capacity` bounds the queue, `rate` is a `(per_second, burst)`
/// token bucket — and tallies the explicit per-job outcomes. Rejected jobs
/// terminate with [`McdError::Rejected`]; any other failure propagates.
pub fn run_admission(
    config: &EvaluationConfig,
    jobs: Vec<EvalJob>,
    capacity: Option<usize>,
    rate: Option<(f64, f64)>,
) -> Result<AdmissionOutcome, McdError> {
    let mut builder = Evaluator::builder().config(config.clone()).workers(1);
    if let Some(capacity) = capacity {
        builder = builder.queue_capacity(capacity);
    }
    if let Some((per_second, burst)) = rate {
        builder = builder.rate_limit(per_second, burst);
    }
    let evaluator = builder.build();
    let mut outcome = AdmissionOutcome::default();
    let mut streams = Vec::with_capacity(jobs.len());
    for job in jobs {
        let (stream, admissions) = evaluator.try_submit_all(vec![job]);
        for admission in &admissions {
            if let Admission::Rejected { reason, .. } = admission {
                match reason {
                    RejectReason::QueueFull { .. } => outcome.rejected_queue_full += 1,
                    RejectReason::RateLimited => outcome.rejected_rate_limited += 1,
                }
            }
        }
        streams.push(stream);
    }
    for stream in streams {
        match stream.collect() {
            Ok(_) => outcome.completed += 1,
            Err(McdError::Rejected(_)) => {}
            Err(err) => return Err(err),
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_benchmark_major_with_cycling_priorities() {
        let jobs = stream_jobs(4).unwrap();
        assert_eq!(jobs.len(), 12);
        // Benchmark-major order.
        let names: Vec<&str> = jobs.iter().map(|j| j.benchmark().name).collect();
        assert_eq!(&names[0..4], &["adpcm decode"; 4]);
        assert_eq!(&names[4..8], &["kv store"; 4]);
        assert_eq!(&names[8..12], &["sensor hub"; 4]);
        // All three priority classes are present.
        for priority in [Priority::Interactive, Priority::Batch, Priority::Background] {
            assert!(jobs.iter().any(|j| j.priority() == priority));
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        let small = [10.0, 20.0];
        assert_eq!(percentile(&small, 50.0), 10.0);
        assert_eq!(percentile(&small, 99.0), 20.0);
    }

    #[test]
    fn latency_summary_of_empty_samples_is_zero() {
        let summary = LatencySummary::from_samples(&mut []);
        assert_eq!(summary.p50_ms, 0.0);
        assert_eq!(summary.max_ms, 0.0);
    }

    #[test]
    fn chaos_run_reaches_exactly_one_terminal_per_job() {
        let dir = std::env::temp_dir().join(format!("mcd-chaos-lib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_chaos(&dir, stream_jobs(2).unwrap(), FaultConfig::chaos(7), 2).unwrap();
        assert_eq!(report.jobs, 6);
        assert_eq!(report.completed + report.faulted, report.jobs);
        assert_eq!(report.double_terminals, 0);
        assert!(
            report.unexpected.is_empty(),
            "non-injected failures under chaos: {:?}",
            report.unexpected
        );
        assert_eq!(report.digests.len(), report.jobs);
        assert_eq!(
            report.digests.iter().flatten().count(),
            report.completed,
            "one digest per completed job"
        );
        let integrity = check_cache_integrity(&dir);
        assert!(
            integrity.clean(),
            "corrupt={:?} stranded={:?}",
            integrity.corrupt,
            integrity.stranded
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn integrity_check_flags_torn_artifacts_and_debris() {
        let dir = std::env::temp_dir().join(format!("mcd-integrity-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("trace-deadbeef.bin"), b"torn").unwrap();
        std::fs::write(dir.join(".lock-foo.bin"), b"").unwrap();
        std::fs::write(dir.join(".tmp-999-bar.bin"), b"half").unwrap();
        let integrity = check_cache_integrity(&dir);
        assert!(!integrity.clean());
        assert_eq!(integrity.corrupt, vec!["trace-deadbeef.bin".to_string()]);
        assert_eq!(integrity.stranded.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_is_order_and_bit_sensitive() {
        use mcd_dvfs::evaluation::SchemeResult;
        use mcd_dvfs::scheme::SchemeOutcome;
        use mcd_sim::stats::{RelativeMetrics, SimStats};
        let eval = |name: &str, degradation: f64| BenchmarkEvaluation {
            name: name.to_string(),
            schemes: vec![SchemeOutcome {
                name: "offline".to_string(),
                label: "off-line".to_string(),
                result: SchemeResult {
                    stats: SimStats::default(),
                    metrics: RelativeMetrics {
                        performance_degradation: degradation,
                        ..RelativeMetrics::default()
                    },
                },
            }],
            baseline: SimStats::default(),
        };
        let a = vec![eval("a", 0.05), eval("b", 0.06)];
        let b = vec![eval("b", 0.06), eval("a", 0.05)];
        assert_ne!(metrics_digest(&a), metrics_digest(&b), "order matters");
        let c = vec![eval("a", 0.05 + 1e-15), eval("b", 0.06)];
        assert_ne!(metrics_digest(&a), metrics_digest(&c), "bits matter");
        assert_eq!(metrics_digest(&a), metrics_digest(&a.clone()));
    }
}
