//! A minimal, dependency-free benchmark harness.
//!
//! The build environment has no access to crates.io, so the harness binaries
//! in `benches/` cannot use `criterion`. This module provides the small subset
//! the suite needs — named benchmark functions, benchmark groups, per-sample
//! wall-clock timing, and a smoke mode — behind a similar API shape.
//!
//! Behaviour mirrors criterion's integration with cargo:
//!
//! * `cargo bench` passes `--bench` to each harness, enabling full timing runs;
//! * any other invocation (for example `cargo test --benches`) runs every
//!   benchmark exactly once as a smoke test and reports no statistics.

use std::hint::black_box;
use std::time::{Duration, Instant};

pub use std::hint::black_box as bb;

/// Top-level harness: collects and reports benchmark timings.
#[derive(Debug)]
pub struct Harness {
    samples: usize,
    timing_enabled: bool,
}

impl Harness {
    /// Creates a harness, inspecting the process arguments the way criterion
    /// does: full timing only when cargo passed `--bench`.
    pub fn from_args(samples: usize) -> Self {
        let timing_enabled = std::env::args().any(|a| a == "--bench");
        Harness {
            samples: samples.max(1),
            timing_enabled,
        }
    }

    /// Runs one named benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: if self.timing_enabled { self.samples } else { 1 },
            durations: Vec::new(),
        };
        f(&mut bencher);
        report(name, &bencher.durations, self.timing_enabled);
    }

    /// Starts a named group; group benchmarks are reported as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
}

impl Group<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        self.harness.bench_function(&full, f);
    }

    /// Ends the group (kept for API symmetry; reporting is immediate).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `f` once per sample, preventing the result from being optimized
    /// away.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One untimed warm-up to populate caches and lazy statics — pointless
        // in smoke mode, where the single sample is not reported as a timing.
        if self.samples > 1 {
            black_box(f());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.durations.push(start.elapsed());
        }
    }
}

fn report(name: &str, durations: &[Duration], timing_enabled: bool) {
    if durations.is_empty() {
        println!("{name:<44} no samples (closure never called iter)");
        return;
    }
    if !timing_enabled {
        println!("{name:<44} ok (smoke run; pass --bench for timings)");
        return;
    }
    let mut sorted: Vec<Duration> = durations.to_vec();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    println!(
        "{name:<44} mean {:>12?}  median {:>12?}  min {:>12?}  ({} samples)",
        mean,
        median,
        min,
        sorted.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_one_sample_per_request() {
        let mut b = Bencher {
            samples: 5,
            durations: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.durations.len(), 5);
        // Five timed calls plus one warm-up.
        assert_eq!(calls, 6);
    }

    #[test]
    fn smoke_mode_skips_the_warm_up() {
        let mut b = Bencher {
            samples: 1,
            durations: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.durations.len(), 1);
        assert_eq!(calls, 1);
    }
}
