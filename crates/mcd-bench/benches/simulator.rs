//! Benchmark: raw throughput of the MCD timing simulator, with and without
//! event recording, on representative workloads.

use mcd_bench::timing::{bb, Harness};
use mcd_sim::config::MachineConfig;
use mcd_sim::simulator::{NullHooks, Simulator};
use mcd_workloads::generator::generate_trace;
use mcd_workloads::programs;

fn main() {
    let machine = MachineConfig::default();
    let sim = Simulator::new(machine);
    let mut harness = Harness::from_args(10);

    let mut group = harness.benchmark_group("simulator_throughput");
    for (name, (program, inputs)) in [
        ("jpeg_compress", programs::jpeg::compress()),
        ("mcf", programs::mcf::mcf()),
        ("swim", programs::swim::swim()),
    ] {
        let trace: Vec<_> = generate_trace(&program, &inputs.training)
            .into_iter()
            .take(50_000)
            .collect();
        group.bench_function(&format!("{name}_timing_only"), |b| {
            b.iter(|| {
                let res = sim.run(bb(trace.iter().copied()), &mut NullHooks, false);
                bb(res.stats.run_time)
            })
        });
        group.bench_function(&format!("{name}_with_event_recording"), |b| {
            b.iter(|| {
                let res = sim.run(bb(trace.iter().copied()), &mut NullHooks, true);
                bb(res.events.map(|e| e.len()))
            })
        });
    }
    group.finish();
}
