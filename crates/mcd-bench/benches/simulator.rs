//! Criterion benchmark: raw throughput of the MCD timing simulator, with and
//! without event recording, on representative workloads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcd_sim::config::MachineConfig;
use mcd_sim::simulator::{NullHooks, Simulator};
use mcd_workloads::generator::generate_trace;
use mcd_workloads::programs;
use std::hint::black_box;

fn simulator_benchmarks(c: &mut Criterion) {
    let machine = MachineConfig::default();
    let sim = Simulator::new(machine);

    let mut group = c.benchmark_group("simulator_throughput");
    for (name, (program, inputs)) in [
        ("jpeg_compress", programs::jpeg::compress()),
        ("mcf", programs::mcf::mcf()),
        ("swim", programs::swim::swim()),
    ] {
        let trace: Vec<_> = generate_trace(&program, &inputs.training)
            .into_iter()
            .take(50_000)
            .collect();
        let instrs = trace.iter().filter(|t| t.as_instr().is_some()).count() as u64;
        group.throughput(Throughput::Elements(instrs));
        group.bench_function(format!("{name}_timing_only"), |b| {
            b.iter(|| {
                let res = sim.run(black_box(trace.iter().copied()), &mut NullHooks, false);
                black_box(res.stats.run_time)
            })
        });
        group.bench_function(format!("{name}_with_event_recording"), |b| {
            b.iter(|| {
                let res = sim.run(black_box(trace.iter().copied()), &mut NullHooks, true);
                black_box(res.events.map(|e| e.len()))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = simulator_benchmarks
}
criterion_main!(benches);
