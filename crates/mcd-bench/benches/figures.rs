//! Criterion benchmark: end-to-end cost of regenerating one benchmark's group
//! of bars in Figures 4–6 (baseline + off-line oracle + on-line controller +
//! profile-driven training and production run).

use criterion::{criterion_group, criterion_main, Criterion};
use mcd_dvfs::evaluation::{evaluate_benchmark, EvaluationConfig};
use mcd_dvfs::profile::{train, TrainingConfig};
use mcd_sim::config::MachineConfig;
use mcd_workloads::suite;
use std::hint::black_box;

fn figure_benchmarks(c: &mut Criterion) {
    let bench = suite::benchmark("adpcm decode").expect("known benchmark");

    c.bench_function("profile_training_adpcm_decode", |b| {
        let machine = MachineConfig::default();
        b.iter(|| {
            let plan = train(
                &bench.program,
                &bench.inputs.training,
                &machine,
                &TrainingConfig::default(),
            );
            black_box(plan.table.len())
        })
    });

    c.bench_function("figure4_bar_group_adpcm_decode", |b| {
        let config = EvaluationConfig::default();
        b.iter(|| {
            let eval = evaluate_benchmark(black_box(&bench), &config);
            black_box(eval.profile.metrics.energy_savings)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figure_benchmarks
}
criterion_main!(benches);
