//! Benchmark: end-to-end cost of regenerating one benchmark's group of bars in
//! Figures 4–6 (baseline + off-line oracle + on-line controller +
//! profile-driven training and production run).

use mcd_bench::timing::{bb, Harness};
use mcd_dvfs::evaluation::EvaluationConfig;
use mcd_dvfs::profile::{train, TrainingConfig};
use mcd_dvfs::service::{EvalJob, Evaluator};
use mcd_sim::config::MachineConfig;
use mcd_workloads::suite;

fn main() {
    let bench = suite::benchmark("adpcm decode").expect("known benchmark");
    let mut harness = Harness::from_args(10);

    harness.bench_function("profile_training_adpcm_decode", |b| {
        let machine = MachineConfig::default();
        b.iter(|| {
            let plan = train(
                &bench.program,
                &bench.inputs.training,
                &machine,
                &TrainingConfig::default(),
            );
            bb(plan.table.len())
        })
    });

    harness.bench_function("figure4_bar_group_adpcm_decode", |b| {
        b.iter(|| {
            // A fresh single-use service per iteration, so every iteration
            // pays the full end-to-end cost (the baseline memo of a shared
            // service would make iterations after the first cheaper).
            let evaluator = Evaluator::builder()
                .config(EvaluationConfig::default())
                .build();
            let eval = evaluator
                .submit(EvalJob::new(bb(&bench).clone()))
                .collect()
                .expect("evaluation succeeds")
                .remove(0);
            bb(eval
                .result(mcd_dvfs::scheme::names::PROFILE)
                .map(|r| r.metrics.energy_savings))
        })
    });
}
