//! Criterion benchmark: cost of the off-line analysis (event recording, DAG
//! construction, shaker passes, slowdown thresholding) on a real region.

use criterion::{criterion_group, criterion_main, Criterion};
use mcd_dvfs::dag::DependenceDag;
use mcd_dvfs::shaker::Shaker;
use mcd_dvfs::threshold::SlowdownThreshold;
use mcd_sim::config::MachineConfig;
use mcd_sim::simulator::{NullHooks, Simulator};
use mcd_sim::time::MegaHertz;
use mcd_workloads::generator::generate_trace;
use mcd_workloads::programs;
use std::hint::black_box;

fn shaker_benchmarks(c: &mut Criterion) {
    let (program, inputs) = programs::gsm::decode();
    let trace: Vec<_> = generate_trace(&program, &inputs.training)
        .into_iter()
        .take(30_000)
        .collect();
    let machine = MachineConfig::default();
    let recording = Simulator::new(machine.clone()).run(trace, &mut NullHooks, true);
    let events = recording.events.expect("events recorded");

    c.bench_function("dag_construction_30k_instr", |b| {
        b.iter(|| {
            let dag = DependenceDag::from_trace(black_box(&events));
            black_box(dag.len())
        })
    });

    c.bench_function("shaker_full_pass_30k_instr", |b| {
        b.iter(|| {
            let mut dag = DependenceDag::from_trace(black_box(&events));
            let hist = Shaker::new().shake_into_histograms(
                &mut dag,
                &machine.grid,
                MegaHertz::new(1000.0),
            );
            black_box(hist.total_cycles())
        })
    });

    c.bench_function("slowdown_thresholding", |b| {
        let mut dag = DependenceDag::from_trace(&events);
        let hist =
            Shaker::new().shake_into_histograms(&mut dag, &machine.grid, MegaHertz::new(1000.0));
        let chooser = SlowdownThreshold::new(0.07);
        b.iter(|| black_box(chooser.choose(black_box(&hist))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = shaker_benchmarks
}
criterion_main!(benches);
