//! Benchmark: cost of the off-line analysis (event recording, DAG
//! construction, shaker passes, slowdown thresholding) on a real region.

use mcd_bench::timing::{bb, Harness};
use mcd_dvfs::dag::DependenceDag;
use mcd_dvfs::shaker::Shaker;
use mcd_dvfs::threshold::SlowdownThreshold;
use mcd_sim::config::MachineConfig;
use mcd_sim::simulator::{NullHooks, Simulator};
use mcd_sim::time::MegaHertz;
use mcd_workloads::generator::generate_trace;
use mcd_workloads::programs;

fn main() {
    let (program, inputs) = programs::gsm::decode();
    let trace: Vec<_> = generate_trace(&program, &inputs.training)
        .into_iter()
        .take(30_000)
        .collect();
    let machine = MachineConfig::default();
    let recording = Simulator::new(machine.clone()).run(trace, &mut NullHooks, true);
    let events = recording.events.expect("events recorded");
    let mut harness = Harness::from_args(10);

    harness.bench_function("dag_construction_30k_instr", |b| {
        b.iter(|| {
            let dag = DependenceDag::from_trace(bb(&events));
            bb(dag.len())
        })
    });

    harness.bench_function("shaker_full_pass_30k_instr", |b| {
        b.iter(|| {
            let mut dag = DependenceDag::from_trace(bb(&events));
            let hist = Shaker::new().shake_into_histograms(
                &mut dag,
                &machine.grid,
                MegaHertz::new(1000.0),
            );
            bb(hist.total_cycles())
        })
    });

    harness.bench_function("slowdown_thresholding", |b| {
        let mut dag = DependenceDag::from_trace(&events);
        let hist =
            Shaker::new().shake_into_histograms(&mut dag, &machine.grid, MegaHertz::new(1000.0));
        let chooser = SlowdownThreshold::new(0.07);
        b.iter(|| bb(chooser.choose(bb(&hist))))
    });
}
