//! Criterion benchmark: profiling-side costs — trace generation, call-tree
//! construction under different context policies, long-running node selection
//! and instrumentation planning.

use criterion::{criterion_group, criterion_main, Criterion};
use mcd_profiling::call_tree::CallTree;
use mcd_profiling::candidates::LongRunningSet;
use mcd_profiling::context::ContextPolicy;
use mcd_profiling::edit::InstrumentationPlan;
use mcd_workloads::generator::generate_trace;
use mcd_workloads::programs;
use std::hint::black_box;

fn call_tree_benchmarks(c: &mut Criterion) {
    let (program, inputs) = programs::gzip::gzip();

    c.bench_function("trace_generation_gzip_training", |b| {
        b.iter(|| black_box(generate_trace(black_box(&program), &inputs.training).len()))
    });

    let trace = generate_trace(&program, &inputs.training);

    let mut group = c.benchmark_group("call_tree_construction");
    for policy in [
        ContextPolicy::LoopFuncSitePath,
        ContextPolicy::FuncPath,
        ContextPolicy::LoopFunc,
    ] {
        group.bench_function(policy.abbreviation(), |b| {
            b.iter(|| black_box(CallTree::build(black_box(&trace), policy).len()))
        });
    }
    group.finish();

    c.bench_function("candidate_selection_and_planning", |b| {
        b.iter(|| {
            let tree = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
            let lr = LongRunningSet::identify(&tree);
            let plan = InstrumentationPlan::new(tree, lr, ContextPolicy::LoopFuncSitePath);
            black_box(plan.static_instrumentation_points())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = call_tree_benchmarks
}
criterion_main!(benches);
