//! Benchmark: profiling-side costs — trace generation, call-tree construction
//! under different context policies, long-running node selection and
//! instrumentation planning.

use mcd_bench::timing::{bb, Harness};
use mcd_profiling::call_tree::CallTree;
use mcd_profiling::candidates::LongRunningSet;
use mcd_profiling::context::ContextPolicy;
use mcd_profiling::edit::InstrumentationPlan;
use mcd_workloads::generator::generate_trace;
use mcd_workloads::programs;

fn main() {
    let (program, inputs) = programs::gzip::gzip();
    let mut harness = Harness::from_args(10);

    harness.bench_function("trace_generation_gzip_training", |b| {
        b.iter(|| bb(generate_trace(bb(&program), &inputs.training).len()))
    });

    let trace = generate_trace(&program, &inputs.training);

    let mut group = harness.benchmark_group("call_tree_construction");
    for policy in [
        ContextPolicy::LoopFuncSitePath,
        ContextPolicy::FuncPath,
        ContextPolicy::LoopFunc,
    ] {
        group.bench_function(policy.abbreviation(), |b| {
            b.iter(|| bb(CallTree::build(bb(&trace), policy).len()))
        });
    }
    group.finish();

    harness.bench_function("candidate_selection_and_planning", |b| {
        b.iter(|| {
            let tree = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
            let lr = LongRunningSet::identify(&tree);
            let plan = InstrumentationPlan::new(tree, lr, ContextPolicy::LoopFuncSitePath);
            bb(plan.static_instrumentation_points())
        })
    });
}
