//! Definitions of calling context (Section 3.1 of the paper).
//!
//! The profiler can distinguish program phases at six levels of sophistication.
//! Four of them correspond to different call trees (whether loops get their own
//! nodes, and whether calls to the same subroutine from different call sites
//! get separate nodes); the last two (L+F and F) use the L+F+P / F+P trees to
//! *identify* long-running nodes during profiling but ignore calling history at
//! run time, which makes their run-time instrumentation far simpler.

use std::fmt;

/// A calling-context policy.
///
/// The letters follow the paper: **L** = loops get nodes, **F** = functions
/// (subroutines) get nodes, **C** = call sites within a caller are
/// distinguished, **P** = the call path (chain) is tracked at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContextPolicy {
    /// Loops + functions + call sites + paths: the most precise (and most
    /// expensive) definition of context.
    LoopFuncSitePath,
    /// Loops + functions + paths (call sites within a caller are merged).
    LoopFuncPath,
    /// Functions + call sites + paths (no loop nodes).
    FuncSitePath,
    /// Functions + paths only (the calling context tree of Ammons et al.).
    FuncPath,
    /// Loops + functions, no run-time path tracking: reconfigure whenever a
    /// long-running static subroutine or loop is entered, whatever the path.
    LoopFunc,
    /// Functions only, no run-time path tracking.
    Func,
}

impl ContextPolicy {
    /// All six policies, most precise first (the order of Figure 12).
    pub const ALL: [ContextPolicy; 6] = [
        ContextPolicy::LoopFuncSitePath,
        ContextPolicy::LoopFuncPath,
        ContextPolicy::FuncSitePath,
        ContextPolicy::FuncPath,
        ContextPolicy::LoopFunc,
        ContextPolicy::Func,
    ];

    /// Whether loops appear as call-tree nodes under this policy.
    pub fn tracks_loops(self) -> bool {
        matches!(
            self,
            ContextPolicy::LoopFuncSitePath | ContextPolicy::LoopFuncPath | ContextPolicy::LoopFunc
        )
    }

    /// Whether calls from different call sites within the same caller get
    /// distinct call-tree nodes.
    pub fn tracks_call_sites(self) -> bool {
        matches!(
            self,
            ContextPolicy::LoopFuncSitePath | ContextPolicy::FuncSitePath
        )
    }

    /// Whether the run-time instrumentation tracks the call chain (and
    /// therefore needs the node-label lookup tables).
    pub fn tracks_paths(self) -> bool {
        !matches!(self, ContextPolicy::LoopFunc | ContextPolicy::Func)
    }

    /// The paper's abbreviation for the policy (e.g. `"L+F+C+P"`).
    pub fn abbreviation(self) -> &'static str {
        match self {
            ContextPolicy::LoopFuncSitePath => "L+F+C+P",
            ContextPolicy::LoopFuncPath => "L+F+P",
            ContextPolicy::FuncSitePath => "F+C+P",
            ContextPolicy::FuncPath => "F+P",
            ContextPolicy::LoopFunc => "L+F",
            ContextPolicy::Func => "F",
        }
    }

    /// The policy whose *tree* this policy uses for phase-one identification.
    ///
    /// L+F and F do not track paths at run time, but the paper identifies their
    /// long-running nodes using the L+F+P and F+P trees respectively.
    pub fn identification_policy(self) -> ContextPolicy {
        match self {
            ContextPolicy::LoopFunc => ContextPolicy::LoopFuncPath,
            ContextPolicy::Func => ContextPolicy::FuncPath,
            other => other,
        }
    }
}

impl fmt::Display for ContextPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_policies_with_unique_abbreviations() {
        let mut abbrs: Vec<&str> = ContextPolicy::ALL
            .iter()
            .map(|p| p.abbreviation())
            .collect();
        abbrs.sort();
        abbrs.dedup();
        assert_eq!(abbrs.len(), 6);
    }

    #[test]
    fn tracking_properties() {
        assert!(ContextPolicy::LoopFuncSitePath.tracks_loops());
        assert!(ContextPolicy::LoopFuncSitePath.tracks_call_sites());
        assert!(ContextPolicy::LoopFuncSitePath.tracks_paths());

        assert!(!ContextPolicy::FuncPath.tracks_loops());
        assert!(!ContextPolicy::FuncPath.tracks_call_sites());
        assert!(ContextPolicy::FuncPath.tracks_paths());

        assert!(ContextPolicy::LoopFunc.tracks_loops());
        assert!(!ContextPolicy::LoopFunc.tracks_paths());
        assert!(!ContextPolicy::Func.tracks_loops());
        assert!(!ContextPolicy::Func.tracks_call_sites());
    }

    #[test]
    fn identification_policies() {
        assert_eq!(
            ContextPolicy::LoopFunc.identification_policy(),
            ContextPolicy::LoopFuncPath
        );
        assert_eq!(
            ContextPolicy::Func.identification_policy(),
            ContextPolicy::FuncPath
        );
        assert_eq!(
            ContextPolicy::FuncSitePath.identification_policy(),
            ContextPolicy::FuncSitePath
        );
    }

    #[test]
    fn display_matches_abbreviation() {
        for p in ContextPolicy::ALL {
            assert_eq!(p.to_string(), p.abbreviation());
        }
    }
}
