//! Call-tree construction (phase one of the paper's analysis).
//!
//! The call tree is a compressed dynamic call trace: one node per distinct
//! path from `main` to a subroutine or loop, annotated with the number of
//! dynamic instances and the instructions executed. It extends the calling
//! context tree of Ammons et al. with loop nodes and (optionally) call-site
//! differentiation, as described in Section 3.1.

use crate::context::ContextPolicy;
use mcd_sim::instruction::{CallSiteId, LoopId, Marker, SubroutineId, TraceItem};

/// Identifier of a node within one call tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// What program structure a call-tree node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    /// A subroutine reached through (optionally) a particular call site.
    Subroutine(SubroutineId),
    /// A loop within the parent subroutine.
    Loop(LoopId),
}

/// One node of the call tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CallTreeNode {
    /// This node's id.
    pub id: NodeId,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// The structure this node stands for.
    pub kind: NodeKind,
    /// The call site through which the subroutine was reached, when the policy
    /// distinguishes call sites (always `None` for loop nodes and for policies
    /// without call-site tracking).
    pub call_site: Option<CallSiteId>,
    /// Children, in discovery order.
    pub children: Vec<NodeId>,
    /// Number of dynamic instances (entries) of this node.
    pub instances: u64,
    /// Instructions executed while this node was the innermost active node.
    pub self_instructions: u64,
}

/// A call tree built from a dynamic trace under a particular context policy.
#[derive(Debug, Clone, PartialEq)]
pub struct CallTree {
    policy: ContextPolicy,
    nodes: Vec<CallTreeNode>,
    root: NodeId,
}

impl CallTree {
    /// Builds the call tree of `trace` under `policy`.
    ///
    /// The trace must begin with the entry subroutine's `SubroutineEnter`
    /// marker (as produced by the workload generator). Markers that the policy
    /// ignores (loop markers under F-only policies) are skipped.
    pub fn build<'a, I>(trace: I, policy: ContextPolicy) -> Self
    where
        I: IntoIterator<Item = &'a TraceItem>,
    {
        Self::build_items(trace.into_iter().copied(), policy)
    }

    /// [`CallTree::build`] over owned items — the entry point for streamed
    /// decoders such as `PackedTrace` cursors, which yield `TraceItem` by
    /// value without materializing the trace.
    pub fn build_items<I>(trace: I, policy: ContextPolicy) -> Self
    where
        I: IntoIterator<Item = TraceItem>,
    {
        let tree_policy = policy.identification_policy();
        let mut nodes: Vec<CallTreeNode> = Vec::new();
        // The root is created lazily from the first subroutine marker; until
        // then instructions (if any) are dropped.
        let mut stack: Vec<NodeId> = Vec::new();
        let mut root: Option<NodeId> = None;

        for item in trace {
            match item {
                TraceItem::Instr(_) => {
                    if let Some(&top) = stack.last() {
                        nodes[top.0 as usize].self_instructions += 1;
                    }
                }
                TraceItem::Marker(marker) => match marker {
                    Marker::SubroutineEnter {
                        subroutine,
                        call_site,
                    } => {
                        let site = if tree_policy.tracks_call_sites() && !stack.is_empty() {
                            Some(call_site)
                        } else {
                            None
                        };
                        let kind = NodeKind::Subroutine(subroutine);
                        let id = Self::find_or_create(&mut nodes, &stack, kind, site, &mut root);
                        nodes[id.0 as usize].instances += 1;
                        stack.push(id);
                    }
                    Marker::SubroutineExit { subroutine } => {
                        Self::pop_until(&mut stack, &nodes, NodeKind::Subroutine(subroutine));
                    }
                    Marker::LoopEnter { loop_id } => {
                        if tree_policy.tracks_loops() {
                            let kind = NodeKind::Loop(loop_id);
                            let id =
                                Self::find_or_create(&mut nodes, &stack, kind, None, &mut root);
                            nodes[id.0 as usize].instances += 1;
                            stack.push(id);
                        }
                    }
                    Marker::LoopExit { loop_id } => {
                        if tree_policy.tracks_loops() {
                            Self::pop_until(&mut stack, &nodes, NodeKind::Loop(loop_id));
                        }
                    }
                },
            }
        }

        let root = root.unwrap_or_else(|| {
            // Degenerate empty trace: synthesize a root so the tree is well formed.
            nodes.push(CallTreeNode {
                id: NodeId(0),
                parent: None,
                kind: NodeKind::Subroutine(SubroutineId(0)),
                call_site: None,
                children: Vec::new(),
                instances: 0,
                self_instructions: 0,
            });
            NodeId(0)
        });

        CallTree {
            policy,
            nodes,
            root,
        }
    }

    fn find_or_create(
        nodes: &mut Vec<CallTreeNode>,
        stack: &[NodeId],
        kind: NodeKind,
        call_site: Option<CallSiteId>,
        root: &mut Option<NodeId>,
    ) -> NodeId {
        if let Some(&parent) = stack.last() {
            // Look for an existing child of the same kind (and call site).
            let existing = nodes[parent.0 as usize]
                .children
                .iter()
                .copied()
                .find(|&c| {
                    let n = &nodes[c.0 as usize];
                    n.kind == kind && n.call_site == call_site
                });
            if let Some(id) = existing {
                return id;
            }
            let id = NodeId(nodes.len() as u32);
            nodes.push(CallTreeNode {
                id,
                parent: Some(parent),
                kind,
                call_site,
                children: Vec::new(),
                instances: 0,
                self_instructions: 0,
            });
            nodes[parent.0 as usize].children.push(id);
            id
        } else if let Some(r) = *root {
            // Re-entering the root (should not normally happen).
            r
        } else {
            let id = NodeId(nodes.len() as u32);
            nodes.push(CallTreeNode {
                id,
                parent: None,
                kind,
                call_site: None,
                children: Vec::new(),
                instances: 0,
                self_instructions: 0,
            });
            *root = Some(id);
            id
        }
    }

    fn pop_until(stack: &mut Vec<NodeId>, nodes: &[CallTreeNode], kind: NodeKind) {
        // Pop nested nodes (e.g. loops left open by a truncated trace) until the
        // matching node is popped. If no matching node is on the stack, do
        // nothing (stray exit marker).
        if let Some(pos) = stack
            .iter()
            .rposition(|&id| nodes[id.0 as usize].kind == kind)
        {
            stack.truncate(pos);
        }
    }

    /// The context policy this tree was built for.
    pub fn policy(&self) -> ContextPolicy {
        self.policy
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[CallTreeNode] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &CallTreeNode {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree has no nodes (only possible for an empty trace).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total instructions attributed to the subtree rooted at `id` (the node's
    /// own instructions plus all descendants').
    pub fn total_instructions(&self, id: NodeId) -> u64 {
        let node = self.node(id);
        node.self_instructions
            + node
                .children
                .iter()
                .map(|&c| self.total_instructions(c))
                .sum::<u64>()
    }

    /// Average instructions per instance of the subtree rooted at `id`.
    pub fn average_instance_instructions(&self, id: NodeId) -> f64 {
        let n = self.node(id).instances.max(1);
        self.total_instructions(id) as f64 / n as f64
    }

    /// The path signature of a node: the sequence of (kind, call-site) pairs
    /// from the root down to the node. Two nodes in different trees represent
    /// "the same node" (Table 3's *Common* column) when their signatures match.
    pub fn path_signature(&self, id: NodeId) -> Vec<(NodeKind, Option<CallSiteId>)> {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let n = self.node(c);
            path.push((n.kind, n.call_site));
            cur = n.parent;
        }
        path.reverse();
        path
    }

    /// Iterates node ids in depth-first preorder from the root.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            order.push(id);
            for &c in self.node(id).children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_sim::instruction::{Instr, InstrClass};

    fn sub_enter(s: u32, site: u32) -> TraceItem {
        TraceItem::Marker(Marker::SubroutineEnter {
            subroutine: SubroutineId(s),
            call_site: CallSiteId(site),
        })
    }
    fn sub_exit(s: u32) -> TraceItem {
        TraceItem::Marker(Marker::SubroutineExit {
            subroutine: SubroutineId(s),
        })
    }
    fn loop_enter(l: u32) -> TraceItem {
        TraceItem::Marker(Marker::LoopEnter { loop_id: LoopId(l) })
    }
    fn loop_exit(l: u32) -> TraceItem {
        TraceItem::Marker(Marker::LoopExit { loop_id: LoopId(l) })
    }
    fn instrs(n: usize) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem::Instr(Instr::op(i as u64 * 4, InstrClass::IntAlu)))
            .collect()
    }

    /// The example of Figure 2: main calls initm twice (two call sites), initm
    /// contains loops L1/L2, and L2 calls drand48.
    fn figure2_trace() -> Vec<TraceItem> {
        let mut t = Vec::new();
        t.push(sub_enter(0, u32::MAX)); // main
        for site in [0u32, 1u32] {
            t.push(sub_enter(1, site)); // initm
            t.push(loop_enter(0)); // L1
            for _ in 0..3 {
                t.push(loop_enter(1)); // L2
                for _ in 0..3 {
                    t.push(sub_enter(2, 2)); // drand48
                    t.extend(instrs(5));
                    t.push(sub_exit(2));
                }
                t.push(loop_exit(1));
            }
            t.push(loop_exit(0));
            t.push(sub_exit(1));
        }
        t.push(sub_exit(0));
        t
    }

    #[test]
    fn figure2_tree_shapes_match_the_paper() {
        let trace = figure2_trace();
        // L+F+C+P: main, 2×initm (distinct call sites), each with L1, L2, drand48.
        let full = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        assert_eq!(full.len(), 1 + 2 * 4);
        // L+F+P: the two initm calls merge.
        let lfp = CallTree::build(&trace, ContextPolicy::LoopFuncPath);
        assert_eq!(lfp.len(), 1 + 4);
        // F+C+P: no loop nodes, two initm nodes each with a drand48 child.
        let fcp = CallTree::build(&trace, ContextPolicy::FuncSitePath);
        assert_eq!(fcp.len(), 1 + 2 * 2);
        // F+P (the CCT): main, initm, drand48.
        let fp = CallTree::build(&trace, ContextPolicy::FuncPath);
        assert_eq!(fp.len(), 3);
    }

    #[test]
    fn instance_counts_are_superimposed() {
        let trace = figure2_trace();
        let lfp = CallTree::build(&trace, ContextPolicy::LoopFuncPath);
        // drand48 is a single node called 2 (call sites) * 3 (L1) * 3 (L2) times.
        let drand = lfp
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Subroutine(SubroutineId(2)))
            .expect("drand48 node");
        assert_eq!(drand.instances, 18);
        assert_eq!(drand.self_instructions, 18 * 5);
    }

    #[test]
    fn total_instructions_aggregate_children() {
        let trace = figure2_trace();
        let tree = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        let total = tree.total_instructions(tree.root());
        assert_eq!(total, 2 * 3 * 3 * 5);
        // The root executed no instructions itself.
        assert_eq!(tree.node(tree.root()).self_instructions, 0);
    }

    #[test]
    fn simple_policies_use_their_path_tree_for_identification() {
        let trace = figure2_trace();
        let lf = CallTree::build(&trace, ContextPolicy::LoopFunc);
        let lfp = CallTree::build(&trace, ContextPolicy::LoopFuncPath);
        assert_eq!(lf.len(), lfp.len());
        assert_eq!(lf.policy(), ContextPolicy::LoopFunc);
    }

    #[test]
    fn path_signatures_identify_nodes_across_trees() {
        let trace = figure2_trace();
        let a = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        let b = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        for (na, nb) in a.preorder().iter().zip(b.preorder().iter()) {
            assert_eq!(a.path_signature(*na), b.path_signature(*nb));
        }
    }

    #[test]
    fn truncated_trace_with_unmatched_enters_is_tolerated() {
        let mut trace = figure2_trace();
        trace.truncate(trace.len() / 2);
        let tree = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        assert!(tree.len() >= 3);
        assert!(tree.total_instructions(tree.root()) > 0);
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let trace = figure2_trace();
        let tree = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        let mut order = tree.preorder();
        assert_eq!(order.len(), tree.len());
        order.sort();
        order.dedup();
        assert_eq!(order.len(), tree.len());
    }
}
