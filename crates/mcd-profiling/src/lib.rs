//! # mcd-profiling — ATOM-style profiling, call trees and binary editing
//!
//! This crate reproduces phases one and four of the paper's profile-driven
//! reconfiguration pipeline:
//!
//! 1. **Profiling / call-tree construction** ([`call_tree`]): the dynamic
//!    marker stream of an instrumented run is compressed into a call tree with
//!    per-node instance and instruction counts, under any of the six
//!    definitions of calling context ([`context`]).
//! 2. **Candidate selection** ([`candidates`]): nodes whose average instance
//!    exceeds 10 000 instructions (excluding long-running descendants) become
//!    reconfiguration points.
//! 3. **Coverage analysis** ([`coverage`]): how well training-input trees
//!    predict reference-input trees (Table 3).
//! 4. **Application editing** ([`edit`]): which subroutines, loops and call
//!    sites receive instrumentation, how big the run-time lookup tables are,
//!    and a [`RuntimeTracker`](edit::RuntimeTracker) that emulates the inserted
//!    code during simulation, charging the overhead model of [`overhead`].
//!
//! The frequency values themselves are chosen by the `mcd-dvfs` crate (the
//! shaker and slowdown-thresholding algorithms); this crate only decides *where*
//! reconfiguration happens and *what it costs*.
//!
//! ## Example
//!
//! ```
//! use mcd_profiling::call_tree::CallTree;
//! use mcd_profiling::candidates::LongRunningSet;
//! use mcd_profiling::context::ContextPolicy;
//! use mcd_profiling::edit::InstrumentationPlan;
//! use mcd_workloads::{generate_trace, suite};
//!
//! let bench = suite::benchmark("gsm decode").expect("known benchmark");
//! let trace = generate_trace(&bench.program, &bench.inputs.training);
//! let tree = CallTree::build(&trace, ContextPolicy::LoopFunc);
//! let long_running = LongRunningSet::identify(&tree);
//! let plan = InstrumentationPlan::new(tree, long_running, ContextPolicy::LoopFunc);
//! assert!(plan.static_reconfiguration_points() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod call_tree;
pub mod candidates;
pub mod context;
pub mod coverage;
pub mod edit;
pub mod overhead;

pub use call_tree::{CallTree, CallTreeNode, NodeId, NodeKind};
pub use candidates::{LongRunningSet, DEFAULT_THRESHOLD};
pub use context::ContextPolicy;
pub use coverage::CoverageReport;
pub use edit::{InstrumentationPlan, MarkerOutcome, NodeKey, ReconfigEvent, RuntimeTracker};
pub use overhead::OverheadReport;
