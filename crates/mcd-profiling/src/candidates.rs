//! Selection of long-running call-tree nodes (the shaded nodes of Figure 3).
//!
//! Starting from the leaves and working up, a node is a *reconfiguration
//! candidate* when its average instance — excluding instructions executed in
//! long-running descendants — exceeds the threshold (10 000 instructions in
//! the paper: long enough for a frequency change to settle and have an energy
//! impact, short enough that a single setting per node suffices).

use crate::call_tree::{CallTree, NodeId};
use std::collections::HashSet;

/// The default long-running threshold from the paper: 10 000 instructions per
/// average instance.
pub const DEFAULT_THRESHOLD: u64 = 10_000;

/// The set of long-running (reconfiguration-candidate) nodes of one call tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LongRunningSet {
    threshold: u64,
    nodes: HashSet<NodeId>,
}

impl LongRunningSet {
    /// Identifies the long-running nodes of `tree` with the default threshold.
    pub fn identify(tree: &CallTree) -> Self {
        Self::identify_with_threshold(tree, DEFAULT_THRESHOLD)
    }

    /// Identifies the long-running nodes of `tree` using a custom threshold.
    pub fn identify_with_threshold(tree: &CallTree, threshold: u64) -> Self {
        let mut set = HashSet::new();
        Self::visit(tree, tree.root(), threshold, &mut set);
        LongRunningSet {
            threshold,
            nodes: set,
        }
    }

    /// Bottom-up traversal returning the instructions in the subtree that are
    /// not already covered by a long-running descendant.
    fn visit(tree: &CallTree, id: NodeId, threshold: u64, out: &mut HashSet<NodeId>) -> u64 {
        let node = tree.node(id);
        let uncovered_children: u64 = node
            .children
            .iter()
            .map(|&c| Self::visit(tree, c, threshold, out))
            .sum();
        let uncovered = node.self_instructions + uncovered_children;
        let instances = node.instances.max(1);
        if uncovered / instances >= threshold {
            out.insert(id);
            0
        } else {
            uncovered
        }
    }

    /// The threshold used for identification.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Whether `id` was identified as long-running.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains(&id)
    }

    /// Number of long-running nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no node qualified.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates the long-running node ids (in arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The long-running node ids, sorted.
    pub fn sorted(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.nodes.iter().copied().collect();
        v.sort();
        v
    }

    /// Nodes that have a long-running node somewhere in their subtree
    /// (including themselves). These are the nodes whose subroutines need
    /// path-tracking instrumentation under the path-based policies (nodes `A`
    /// through `G` in Figure 3).
    pub fn nodes_reaching_long_running(&self, tree: &CallTree) -> HashSet<NodeId> {
        let mut reaching = HashSet::new();
        for &id in &self.nodes {
            let mut cur = Some(id);
            while let Some(c) = cur {
                if !reaching.insert(c) {
                    break;
                }
                cur = tree.node(c).parent;
            }
        }
        reaching
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call_tree::{CallTree, NodeKind};
    use crate::context::ContextPolicy;
    use mcd_sim::instruction::{CallSiteId, Instr, InstrClass, Marker, SubroutineId, TraceItem};

    fn sub_enter(s: u32, site: u32) -> TraceItem {
        TraceItem::Marker(Marker::SubroutineEnter {
            subroutine: SubroutineId(s),
            call_site: CallSiteId(site),
        })
    }
    fn sub_exit(s: u32) -> TraceItem {
        TraceItem::Marker(Marker::SubroutineExit {
            subroutine: SubroutineId(s),
        })
    }
    fn instrs(n: usize) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem::Instr(Instr::op(i as u64 * 4, InstrClass::IntAlu)))
            .collect()
    }

    /// main calls a big worker (15k instructions per call) and a small helper
    /// (100 instructions per call, 10 calls).
    fn simple_trace() -> Vec<TraceItem> {
        let mut t = vec![sub_enter(0, u32::MAX)];
        t.extend(instrs(500));
        t.push(sub_enter(1, 0));
        t.extend(instrs(15_000));
        t.push(sub_exit(1));
        for _ in 0..10 {
            t.push(sub_enter(2, 1));
            t.extend(instrs(100));
            t.push(sub_exit(2));
        }
        t.push(sub_exit(0));
        t
    }

    #[test]
    fn big_worker_is_long_running_small_helper_is_not() {
        let trace = simple_trace();
        let tree = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        let lr = LongRunningSet::identify(&tree);
        let worker = tree
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Subroutine(SubroutineId(1)))
            .unwrap()
            .id;
        let helper = tree
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Subroutine(SubroutineId(2)))
            .unwrap()
            .id;
        assert!(lr.contains(worker));
        assert!(!lr.contains(helper));
    }

    #[test]
    fn parent_excludes_long_running_children() {
        // main itself only has 500 + 10*100 = 1500 uncovered instructions, so it
        // is not long-running once the worker is covered.
        let trace = simple_trace();
        let tree = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        let lr = LongRunningSet::identify(&tree);
        assert!(!lr.contains(tree.root()));
        assert_eq!(lr.len(), 1);
    }

    #[test]
    fn lower_threshold_admits_more_nodes() {
        let trace = simple_trace();
        let tree = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        let strict = LongRunningSet::identify(&tree);
        let loose = LongRunningSet::identify_with_threshold(&tree, 50);
        assert!(loose.len() > strict.len());
        assert_eq!(loose.threshold(), 50);
    }

    #[test]
    fn root_long_running_when_it_does_the_work_itself() {
        let mut t = vec![sub_enter(0, u32::MAX)];
        t.extend(instrs(50_000));
        t.push(sub_exit(0));
        let tree = CallTree::build(&t, ContextPolicy::FuncPath);
        let lr = LongRunningSet::identify(&tree);
        assert!(lr.contains(tree.root()));
        assert_eq!(lr.len(), 1);
        assert!(!lr.is_empty());
    }

    #[test]
    fn many_instances_dilute_the_average() {
        // A subroutine with 100 instances of 200 instructions each: 20 000 total
        // but only 200 per instance — not long-running.
        let mut t = vec![sub_enter(0, u32::MAX)];
        for _ in 0..100 {
            t.push(sub_enter(1, 0));
            t.extend(instrs(200));
            t.push(sub_exit(1));
        }
        t.push(sub_exit(0));
        let tree = CallTree::build(&t, ContextPolicy::FuncPath);
        let lr = LongRunningSet::identify(&tree);
        let callee = tree
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Subroutine(SubroutineId(1)))
            .unwrap()
            .id;
        assert!(!lr.contains(callee));
        // The total run is 20 000 instructions with one instance of main, so
        // main absorbs it and becomes the reconfiguration point.
        assert!(lr.contains(tree.root()));
    }

    #[test]
    fn reaching_set_covers_ancestors() {
        let trace = simple_trace();
        let tree = CallTree::build(&trace, ContextPolicy::LoopFuncSitePath);
        let lr = LongRunningSet::identify(&tree);
        let reaching = lr.nodes_reaching_long_running(&tree);
        assert!(reaching.contains(&tree.root()));
        for id in lr.iter() {
            assert!(reaching.contains(&id));
        }
        // The helper node does not reach any long-running node.
        let helper = tree
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Subroutine(SubroutineId(2)))
            .unwrap()
            .id;
        assert!(!reaching.contains(&helper));
    }
}
