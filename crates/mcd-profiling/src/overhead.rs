//! Instrumentation overhead model (Section 3.4, Table 4 and Figure 12).
//!
//! ATOM cannot insert inline code, so the paper measures the cost of the added
//! instructions with a hand-instrumented microbenchmark and charges a fixed
//! penalty per instrumentation point inside the simulator. We follow the same
//! approach with the same constants: 9 cycles for a point that accesses the
//! two-dimensional node-label table, 17 cycles for a reconfiguration point
//! (which additionally reads the frequency table and writes the
//! reconfiguration register). Loop headers only add a statically known offset
//! to the current label, and the L+F / F schemes use statically known
//! frequencies whose few instructions schedule into empty issue slots, so both
//! are substantially cheaper.

/// Cycles charged for an instrumentation point that performs the 2-D
/// node-label table lookup (subroutine prologue/epilogue under path tracking).
pub const PATH_INSTRUMENTATION_CYCLES: f64 = 9.0;

/// Cycles charged for a reconfiguration point: node-label update, frequency
/// table access and reconfiguration-register write.
pub const RECONFIG_POINT_CYCLES: f64 = 17.0;

/// Cycles charged for a loop header/footer or call-site label update (adds a
/// statically known offset, no table lookup).
pub const LOOP_LABEL_CYCLES: f64 = 4.0;

/// Cycles charged for a reconfiguration point under the L+F and F policies,
/// where the frequency values are statically known and the handful of
/// instructions schedule into otherwise-empty slots ("virtually zero" in the
/// paper).
pub const SIMPLE_RECONFIG_CYCLES: f64 = 1.0;

/// Static and dynamic instrumentation statistics for one benchmark under one
/// context policy (one row of Table 4, and the inputs to Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadReport {
    /// Static reconfiguration points in the edited binary.
    pub static_reconfiguration_points: usize,
    /// Static instrumentation points (reconfiguration points are a subset).
    pub static_instrumentation_points: usize,
    /// Dynamic executions of reconfiguration points.
    pub dynamic_reconfigurations: u64,
    /// Dynamic executions of instrumentation points (including reconfiguration
    /// points).
    pub dynamic_instrumentations: u64,
    /// Total instrumentation cycles charged during the production run.
    pub overhead_cycles: f64,
    /// Estimated size of the run-time lookup tables, in bytes.
    pub lookup_table_bytes: usize,
}

impl OverheadReport {
    /// Overhead as a fraction of the given total run time expressed in
    /// baseline (1 GHz) cycles.
    pub fn overhead_fraction(&self, total_cycles: f64) -> f64 {
        if total_cycles <= 0.0 {
            0.0
        } else {
            self.overhead_cycles / total_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_the_paper() {
        assert_eq!(PATH_INSTRUMENTATION_CYCLES, 9.0);
        assert_eq!(RECONFIG_POINT_CYCLES, 17.0);
        const {
            assert!(LOOP_LABEL_CYCLES < PATH_INSTRUMENTATION_CYCLES);
            assert!(SIMPLE_RECONFIG_CYCLES < LOOP_LABEL_CYCLES);
        }
    }

    #[test]
    fn overhead_fraction_guards_zero() {
        let r = OverheadReport {
            overhead_cycles: 50.0,
            ..OverheadReport::default()
        };
        assert_eq!(r.overhead_fraction(0.0), 0.0);
        assert!((r.overhead_fraction(10_000.0) - 0.005).abs() < 1e-12);
    }
}
