//! Application editing (phase four): deciding where to place instrumentation
//! and reconfiguration code, and emulating that code at run time.
//!
//! An [`InstrumentationPlan`] is built from the training-run call tree and its
//! long-running set under a chosen [`ContextPolicy`]. It answers the static
//! questions (how many reconfiguration and instrumentation points are placed in
//! the binary, how large the lookup tables are — Table 4 and Figure 12) and
//! hands out [`NodeKey`]s, the identities under which the slowdown-thresholding
//! phase stores per-node frequency settings.
//!
//! A [`RuntimeTracker`] emulates the inserted code during a (training or
//! production) run: it follows the markers of the trace, charges the
//! per-point overhead, and reports when a reconfiguration point is entered or
//! exited so that the controller can write the frequency register.

use crate::call_tree::{CallTree, NodeId, NodeKind};
use crate::candidates::LongRunningSet;
use crate::context::ContextPolicy;
use crate::overhead::{
    LOOP_LABEL_CYCLES, PATH_INSTRUMENTATION_CYCLES, RECONFIG_POINT_CYCLES, SIMPLE_RECONFIG_CYCLES,
};
use mcd_sim::instruction::{LoopId, Marker, SubroutineId};
use std::collections::HashSet;

/// Identity of an entry in the frequency table produced by the off-line
/// analysis.
///
/// Path-tracking policies key the table by call-tree node; the simpler L+F and
/// F policies key it by static structure (all instances of the structure share
/// one setting, "the average frequency of all instances" in the paper's words).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKey {
    /// A call-tree node (path-tracking policies).
    TreeNode(NodeId),
    /// A static subroutine (L+F and F policies).
    Subroutine(SubroutineId),
    /// A static loop (L+F policy).
    Loop(LoopId),
}

/// Notification that a reconfiguration point was crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigEvent {
    /// Execution entered the long-running region identified by the key.
    Enter(NodeKey),
    /// Execution left the long-running region identified by the key.
    Exit(NodeKey),
}

/// What the emulated instrumentation does at one marker.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MarkerOutcome {
    /// Cycles of instrumentation overhead to charge.
    pub overhead_cycles: f64,
    /// Reconfiguration-point crossing, if any.
    pub reconfig: Option<ReconfigEvent>,
    /// Whether an instrumentation point (of any kind) executed.
    pub instrumented: bool,
}

/// The edited binary: where instrumentation goes and what it does.
#[derive(Debug, Clone)]
pub struct InstrumentationPlan {
    policy: ContextPolicy,
    tree: CallTree,
    long_running: LongRunningSet,
    /// Tree nodes that can reach a long-running node (path policies instrument
    /// the corresponding subroutines).
    reaching: HashSet<NodeId>,
    /// Static subroutines whose prologue/epilogue carry path-tracking code.
    instrumented_subroutines: HashSet<SubroutineId>,
    /// Static loops whose header/footer carry label or reconfiguration code.
    instrumented_loops: HashSet<LoopId>,
    /// Static subroutines that are reconfiguration points (some instance is
    /// long-running).
    reconfig_subroutines: HashSet<SubroutineId>,
    /// Static loops that are reconfiguration points.
    reconfig_loops: HashSet<LoopId>,
    /// Static call sites that need label-offset code (call-site policies only).
    instrumented_call_sites: usize,
}

impl InstrumentationPlan {
    /// Builds the plan from the training call tree and its long-running nodes.
    ///
    /// # Panics
    ///
    /// Panics if `tree` was built under a different policy than `policy`'s
    /// identification policy.
    pub fn new(tree: CallTree, long_running: LongRunningSet, policy: ContextPolicy) -> Self {
        assert_eq!(
            tree.policy().identification_policy(),
            policy.identification_policy(),
            "call tree was built under an incompatible context policy"
        );
        let reaching = long_running.nodes_reaching_long_running(&tree);

        let mut instrumented_subroutines = HashSet::new();
        let mut instrumented_loops = HashSet::new();
        let mut reconfig_subroutines = HashSet::new();
        let mut reconfig_loops = HashSet::new();
        let mut instrumented_call_sites = HashSet::new();

        for id in tree.preorder() {
            let node = tree.node(id);
            let reaches = reaching.contains(&id);
            let is_long = long_running.contains(id);
            match node.kind {
                NodeKind::Subroutine(sub) => {
                    if reaches {
                        instrumented_subroutines.insert(sub);
                    }
                    if is_long {
                        reconfig_subroutines.insert(sub);
                    }
                    if reaches && policy.tracks_call_sites() {
                        if let Some(site) = node.call_site {
                            instrumented_call_sites.insert(site);
                        }
                    }
                }
                NodeKind::Loop(l) => {
                    if is_long {
                        reconfig_loops.insert(l);
                        instrumented_loops.insert(l);
                    } else if reaches && policy.tracks_paths() {
                        instrumented_loops.insert(l);
                    }
                }
            }
        }

        InstrumentationPlan {
            policy,
            tree,
            long_running,
            reaching,
            instrumented_subroutines,
            instrumented_loops,
            reconfig_subroutines,
            reconfig_loops,
            instrumented_call_sites: instrumented_call_sites.len(),
        }
    }

    /// The context policy the binary was edited for.
    pub fn policy(&self) -> ContextPolicy {
        self.policy
    }

    /// The training call tree the plan was derived from.
    pub fn tree(&self) -> &CallTree {
        &self.tree
    }

    /// The long-running node set of the training run.
    pub fn long_running(&self) -> &LongRunningSet {
        &self.long_running
    }

    /// The frequency-table keys the off-line analysis must provide settings
    /// for, in deterministic order.
    pub fn reconfig_keys(&self) -> Vec<NodeKey> {
        let mut keys: Vec<NodeKey> = if self.policy.tracks_paths() {
            self.long_running
                .sorted()
                .into_iter()
                .map(NodeKey::TreeNode)
                .collect()
        } else {
            let mut v: Vec<NodeKey> = self
                .reconfig_subroutines
                .iter()
                .map(|&s| NodeKey::Subroutine(s))
                .collect();
            if self.policy.tracks_loops() {
                v.extend(self.reconfig_loops.iter().map(|&l| NodeKey::Loop(l)));
            }
            v
        };
        keys.sort();
        keys
    }

    /// The frequency-table key a long-running training-tree node contributes
    /// to, or `None` if the node is not a reconfiguration point (e.g. a
    /// long-running loop under a policy that does not track loops).
    pub fn key_for_tree_node(&self, id: NodeId) -> Option<NodeKey> {
        if !self.long_running.contains(id) {
            return None;
        }
        let node = self.tree.node(id);
        if self.policy.tracks_paths() {
            match node.kind {
                NodeKind::Loop(_) if !self.policy.tracks_loops() => None,
                _ => Some(NodeKey::TreeNode(id)),
            }
        } else {
            match node.kind {
                NodeKind::Subroutine(sub) => Some(NodeKey::Subroutine(sub)),
                NodeKind::Loop(l) => {
                    if self.policy.tracks_loops() {
                        Some(NodeKey::Loop(l))
                    } else {
                        None
                    }
                }
            }
        }
    }

    /// Number of static reconfiguration points placed in the binary (distinct
    /// subroutines and loops that trigger a frequency change).
    pub fn static_reconfiguration_points(&self) -> usize {
        let loops = if self.policy.tracks_loops() {
            self.reconfig_loops.len()
        } else {
            0
        };
        self.reconfig_subroutines.len() + loops
    }

    /// Number of static instrumentation points (reconfiguration points plus
    /// path-tracking prologues/epilogues, loop labels and call-site labels).
    pub fn static_instrumentation_points(&self) -> usize {
        if !self.policy.tracks_paths() {
            // Every instrumentation point is a reconfiguration point.
            return self.static_reconfiguration_points();
        }
        let loops = if self.policy.tracks_loops() {
            self.instrumented_loops.len()
        } else {
            0
        };
        let sites = if self.policy.tracks_call_sites() {
            self.instrumented_call_sites
        } else {
            0
        };
        self.instrumented_subroutines.len() + loops + sites
    }

    /// Estimated size in bytes of the run-time lookup tables: the
    /// `(N+1) × (S+1)` node-label table (two-byte entries) plus the `N+1`-entry
    /// frequency table (four domains, one byte each). Only path-tracking
    /// policies need the label table.
    pub fn lookup_table_bytes(&self) -> usize {
        let n = self.reconfig_keys().len() + 1;
        let freq_table = n * 4;
        if !self.policy.tracks_paths() {
            return freq_table;
        }
        let tracked_nodes = self.reaching.len() + 1;
        let subroutines = self.instrumented_subroutines.len() + 1;
        tracked_nodes * subroutines * 2 + freq_table
    }

    /// Whether the static subroutine carries instrumentation under this plan.
    pub fn is_instrumented_subroutine(&self, sub: SubroutineId) -> bool {
        if self.policy.tracks_paths() {
            self.instrumented_subroutines.contains(&sub)
        } else {
            self.reconfig_subroutines.contains(&sub)
        }
    }

    /// Creates a fresh run-time tracker for one simulated run of the edited
    /// binary.
    pub fn tracker(&self) -> RuntimeTracker<'_> {
        RuntimeTracker {
            plan: self,
            frames: Vec::with_capacity(64),
            current: Some(CurrentNode::Known(self.tree.root())),
            started: false,
            active_keys: Vec::with_capacity(16),
            dynamic_instrumentations: 0,
            dynamic_reconfigurations: 0,
            overhead_cycles: 0.0,
        }
    }
}

/// Where the run-time label machinery believes execution currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CurrentNode {
    /// A known node of the training call tree.
    Known(NodeId),
    /// A path that did not appear during training (label 0 in the paper).
    Unknown,
}

/// What a stack frame saved when a subroutine or loop was entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    /// The marker did not touch the label (uninstrumented structure).
    Unchanged,
    /// The label was updated; the previous value is saved for the epilogue,
    /// together with the reconfiguration key pushed at entry (if any).
    Saved {
        previous: CurrentNode,
        entered_key: Option<NodeKey>,
    },
}

/// Emulates the instrumentation inserted by [`InstrumentationPlan`] during one
/// run. Feed it every marker of the trace in order.
#[derive(Debug, Clone)]
pub struct RuntimeTracker<'a> {
    plan: &'a InstrumentationPlan,
    frames: Vec<Frame>,
    current: Option<CurrentNode>,
    started: bool,
    active_keys: Vec<NodeKey>,
    dynamic_instrumentations: u64,
    dynamic_reconfigurations: u64,
    overhead_cycles: f64,
}

impl RuntimeTracker<'_> {
    /// Processes one structural marker, returning the emulated instrumentation
    /// behaviour at that point.
    pub fn on_marker(&mut self, marker: &Marker) -> MarkerOutcome {
        if self.plan.policy.tracks_paths() {
            self.on_marker_path(marker)
        } else {
            self.on_marker_simple(marker)
        }
    }

    /// The innermost active reconfiguration key, if execution is currently
    /// inside a long-running region.
    pub fn current_key(&self) -> Option<NodeKey> {
        self.active_keys.last().copied()
    }

    /// Dynamic executions of instrumentation points so far.
    pub fn dynamic_instrumentations(&self) -> u64 {
        self.dynamic_instrumentations
    }

    /// Dynamic executions of reconfiguration points so far.
    pub fn dynamic_reconfigurations(&self) -> u64 {
        self.dynamic_reconfigurations
    }

    /// Total overhead cycles charged so far.
    pub fn overhead_cycles(&self) -> f64 {
        self.overhead_cycles
    }

    fn charge(&mut self, cycles: f64) {
        self.overhead_cycles += cycles;
        self.dynamic_instrumentations += 1;
    }

    fn on_marker_path(&mut self, marker: &Marker) -> MarkerOutcome {
        let policy = self.plan.policy;
        match marker {
            Marker::SubroutineEnter {
                subroutine,
                call_site,
            } => {
                // The entry marker of `main` corresponds to the tree root: the
                // label starts there without any instrumentation cost.
                if !self.started {
                    self.started = true;
                    let root = self.plan.tree.root();
                    self.current = Some(CurrentNode::Known(root));
                    let mut entered_key = None;
                    let mut reconfig = None;
                    if self.plan.long_running.contains(root) {
                        let key = NodeKey::TreeNode(root);
                        self.active_keys.push(key);
                        self.dynamic_reconfigurations += 1;
                        entered_key = Some(key);
                        reconfig = Some(ReconfigEvent::Enter(key));
                    }
                    self.frames.push(Frame::Saved {
                        previous: CurrentNode::Unknown,
                        entered_key,
                    });
                    return MarkerOutcome {
                        overhead_cycles: 0.0,
                        reconfig,
                        instrumented: false,
                    };
                }
                if !self.plan.instrumented_subroutines.contains(subroutine) {
                    self.frames.push(Frame::Unchanged);
                    return MarkerOutcome::default();
                }
                let previous = self.current.unwrap_or(CurrentNode::Unknown);
                // Follow the tree edge from the current node.
                let next = match previous {
                    CurrentNode::Known(cur) => {
                        let want_site = if policy.tracks_call_sites() {
                            Some(*call_site)
                        } else {
                            None
                        };
                        self.plan
                            .tree
                            .node(cur)
                            .children
                            .iter()
                            .copied()
                            .find(|&c| {
                                let n = self.plan.tree.node(c);
                                n.kind == NodeKind::Subroutine(*subroutine)
                                    && (!policy.tracks_call_sites() || n.call_site == want_site)
                            })
                            .map(CurrentNode::Known)
                            .unwrap_or(CurrentNode::Unknown)
                    }
                    CurrentNode::Unknown => CurrentNode::Unknown,
                };
                self.current = Some(next);
                let mut outcome = MarkerOutcome {
                    overhead_cycles: PATH_INSTRUMENTATION_CYCLES,
                    reconfig: None,
                    instrumented: true,
                };
                let mut entered_key = None;
                if let CurrentNode::Known(node) = next {
                    if self.plan.long_running.contains(node) {
                        outcome.overhead_cycles = RECONFIG_POINT_CYCLES;
                        let key = NodeKey::TreeNode(node);
                        self.active_keys.push(key);
                        entered_key = Some(key);
                        outcome.reconfig = Some(ReconfigEvent::Enter(key));
                        self.dynamic_reconfigurations += 1;
                    }
                }
                self.charge(outcome.overhead_cycles);
                self.frames.push(Frame::Saved {
                    previous,
                    entered_key,
                });
                outcome
            }
            Marker::SubroutineExit { .. } => self.pop_frame(PATH_INSTRUMENTATION_CYCLES),
            Marker::LoopEnter { loop_id } => {
                if !policy.tracks_loops() {
                    // No frame: the matching LoopExit is ignored as well.
                    return MarkerOutcome::default();
                }
                if !self.plan.instrumented_loops.contains(loop_id) {
                    self.frames.push(Frame::Unchanged);
                    return MarkerOutcome::default();
                }
                let previous = self.current.unwrap_or(CurrentNode::Unknown);
                let next = match previous {
                    CurrentNode::Known(cur) => self
                        .plan
                        .tree
                        .node(cur)
                        .children
                        .iter()
                        .copied()
                        .find(|&c| self.plan.tree.node(c).kind == NodeKind::Loop(*loop_id))
                        .map(CurrentNode::Known)
                        .unwrap_or(CurrentNode::Unknown),
                    CurrentNode::Unknown => CurrentNode::Unknown,
                };
                self.current = Some(next);
                let mut outcome = MarkerOutcome {
                    overhead_cycles: LOOP_LABEL_CYCLES,
                    reconfig: None,
                    instrumented: true,
                };
                let mut entered_key = None;
                if let CurrentNode::Known(node) = next {
                    if self.plan.long_running.contains(node) {
                        outcome.overhead_cycles = RECONFIG_POINT_CYCLES;
                        let key = NodeKey::TreeNode(node);
                        self.active_keys.push(key);
                        entered_key = Some(key);
                        outcome.reconfig = Some(ReconfigEvent::Enter(key));
                        self.dynamic_reconfigurations += 1;
                    }
                }
                self.charge(outcome.overhead_cycles);
                self.frames.push(Frame::Saved {
                    previous,
                    entered_key,
                });
                outcome
            }
            Marker::LoopExit { .. } => {
                if !policy.tracks_loops() {
                    // No frame was pushed for this loop.
                    return MarkerOutcome::default();
                }
                self.pop_frame(LOOP_LABEL_CYCLES)
            }
        }
    }

    fn pop_frame(&mut self, base_cycles: f64) -> MarkerOutcome {
        match self.frames.pop() {
            None | Some(Frame::Unchanged) => MarkerOutcome::default(),
            Some(Frame::Saved {
                previous,
                entered_key,
            }) => {
                self.current = Some(previous);
                let mut outcome = MarkerOutcome {
                    overhead_cycles: base_cycles,
                    reconfig: None,
                    instrumented: true,
                };
                if let Some(key) = entered_key {
                    // Leaving a long-running region: restore the enclosing setting.
                    self.active_keys.pop();
                    outcome.overhead_cycles = RECONFIG_POINT_CYCLES;
                    outcome.reconfig = Some(ReconfigEvent::Exit(key));
                    self.dynamic_reconfigurations += 1;
                }
                self.charge(outcome.overhead_cycles);
                outcome
            }
        }
    }

    fn on_marker_simple(&mut self, marker: &Marker) -> MarkerOutcome {
        let policy = self.plan.policy;
        match marker {
            Marker::SubroutineEnter { subroutine, .. } => {
                if self.plan.reconfig_subroutines.contains(subroutine) {
                    let key = NodeKey::Subroutine(*subroutine);
                    self.active_keys.push(key);
                    self.dynamic_reconfigurations += 1;
                    self.charge(SIMPLE_RECONFIG_CYCLES);
                    self.frames.push(Frame::Saved {
                        previous: CurrentNode::Unknown,
                        entered_key: Some(key),
                    });
                    MarkerOutcome {
                        overhead_cycles: SIMPLE_RECONFIG_CYCLES,
                        reconfig: Some(ReconfigEvent::Enter(key)),
                        instrumented: true,
                    }
                } else {
                    self.frames.push(Frame::Unchanged);
                    MarkerOutcome::default()
                }
            }
            Marker::SubroutineExit { .. } => self.pop_simple(),
            Marker::LoopEnter { loop_id } => {
                if policy.tracks_loops() && self.plan.reconfig_loops.contains(loop_id) {
                    let key = NodeKey::Loop(*loop_id);
                    self.active_keys.push(key);
                    self.dynamic_reconfigurations += 1;
                    self.charge(SIMPLE_RECONFIG_CYCLES);
                    self.frames.push(Frame::Saved {
                        previous: CurrentNode::Unknown,
                        entered_key: Some(key),
                    });
                    MarkerOutcome {
                        overhead_cycles: SIMPLE_RECONFIG_CYCLES,
                        reconfig: Some(ReconfigEvent::Enter(key)),
                        instrumented: true,
                    }
                } else {
                    self.frames.push(Frame::Unchanged);
                    MarkerOutcome::default()
                }
            }
            Marker::LoopExit { .. } => self.pop_simple(),
        }
    }

    fn pop_simple(&mut self) -> MarkerOutcome {
        match self.frames.pop() {
            None | Some(Frame::Unchanged) => MarkerOutcome::default(),
            Some(Frame::Saved {
                entered_key: Some(key),
                ..
            }) => {
                self.active_keys.pop();
                self.dynamic_reconfigurations += 1;
                self.charge(SIMPLE_RECONFIG_CYCLES);
                MarkerOutcome {
                    overhead_cycles: SIMPLE_RECONFIG_CYCLES,
                    reconfig: Some(ReconfigEvent::Exit(key)),
                    instrumented: true,
                }
            }
            Some(Frame::Saved {
                entered_key: None, ..
            }) => MarkerOutcome::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_sim::instruction::{CallSiteId, Instr, InstrClass, TraceItem};

    fn sub_enter(s: u32, site: u32) -> TraceItem {
        TraceItem::Marker(Marker::SubroutineEnter {
            subroutine: SubroutineId(s),
            call_site: CallSiteId(site),
        })
    }
    fn sub_exit(s: u32) -> TraceItem {
        TraceItem::Marker(Marker::SubroutineExit {
            subroutine: SubroutineId(s),
        })
    }
    fn instrs(n: usize) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem::Instr(Instr::op(i as u64 * 4, InstrClass::IntAlu)))
            .collect()
    }

    /// main(500) -> worker(15k) called twice from two sites + helper(100)*5
    fn trace() -> Vec<TraceItem> {
        let mut t = vec![sub_enter(0, u32::MAX)];
        t.extend(instrs(500));
        for site in [0, 1] {
            t.push(sub_enter(1, site));
            t.extend(instrs(15_000));
            t.push(sub_exit(1));
        }
        for _ in 0..5 {
            t.push(sub_enter(2, 2));
            t.extend(instrs(100));
            t.push(sub_exit(2));
        }
        t.push(sub_exit(0));
        t
    }

    fn plan_for(policy: ContextPolicy) -> InstrumentationPlan {
        let t = trace();
        let tree = CallTree::build(&t, policy);
        let lr = LongRunningSet::identify(&tree);
        InstrumentationPlan::new(tree, lr, policy)
    }

    #[test]
    fn path_policy_distinguishes_call_sites() {
        let plan = plan_for(ContextPolicy::LoopFuncSitePath);
        // Two worker nodes (two call sites) are long-running.
        assert_eq!(plan.reconfig_keys().len(), 2);
        // Static reconfiguration points: the single static worker subroutine.
        assert_eq!(plan.static_reconfiguration_points(), 1);
        // Instrumentation: main + worker prologues, plus the two call sites.
        assert!(plan.static_instrumentation_points() >= 3);
        assert!(plan.lookup_table_bytes() > 0);
    }

    #[test]
    fn simple_policy_keys_by_static_structure() {
        let plan = plan_for(ContextPolicy::Func);
        assert_eq!(
            plan.reconfig_keys(),
            vec![NodeKey::Subroutine(SubroutineId(1))]
        );
        assert_eq!(
            plan.static_instrumentation_points(),
            plan.static_reconfiguration_points()
        );
    }

    #[test]
    fn tracker_reconfigures_on_worker_entry_and_exit() {
        let plan = plan_for(ContextPolicy::LoopFuncSitePath);
        let mut tracker = plan.tracker();
        let mut enters = 0;
        let mut exits = 0;
        for item in trace() {
            if let TraceItem::Marker(m) = item {
                let out = tracker.on_marker(&m);
                match out.reconfig {
                    Some(ReconfigEvent::Enter(_)) => enters += 1,
                    Some(ReconfigEvent::Exit(_)) => exits += 1,
                    None => {}
                }
            }
        }
        assert_eq!(enters, 2, "two worker invocations reconfigure on entry");
        assert_eq!(exits, 2, "and restore on exit");
        assert!(tracker.overhead_cycles() > 0.0);
        assert!(tracker.dynamic_instrumentations() >= 4);
        assert_eq!(tracker.current_key(), None, "run ends outside any region");
    }

    #[test]
    fn tracker_simple_policy_fires_on_any_path() {
        let plan = plan_for(ContextPolicy::Func);
        let mut tracker = plan.tracker();
        let mut enters = 0;
        for item in trace() {
            if let TraceItem::Marker(m) = item {
                if let Some(ReconfigEvent::Enter(key)) = tracker.on_marker(&m).reconfig {
                    assert_eq!(key, NodeKey::Subroutine(SubroutineId(1)));
                    enters += 1;
                }
            }
        }
        assert_eq!(enters, 2);
    }

    #[test]
    fn unknown_paths_do_not_reconfigure_under_path_tracking() {
        // Train on the standard trace, then run a production trace where the
        // worker is reached through a *new* call site (site 9).
        let plan = plan_for(ContextPolicy::LoopFuncSitePath);
        let mut tracker = plan.tracker();
        let mut production = vec![sub_enter(0, u32::MAX)];
        production.push(sub_enter(1, 9));
        production.extend(instrs(10));
        production.push(sub_exit(1));
        production.push(sub_exit(0));
        let mut reconfigs = 0;
        for item in production {
            if let TraceItem::Marker(m) = item {
                if tracker.on_marker(&m).reconfig.is_some() {
                    reconfigs += 1;
                }
            }
        }
        assert_eq!(
            reconfigs, 0,
            "a path unseen in training must not trigger reconfiguration"
        );
    }

    #[test]
    fn simple_policy_reconfigures_even_on_new_paths() {
        let plan = plan_for(ContextPolicy::Func);
        let mut tracker = plan.tracker();
        let mut production = vec![sub_enter(0, u32::MAX)];
        production.push(sub_enter(1, 9));
        production.extend(instrs(10));
        production.push(sub_exit(1));
        production.push(sub_exit(0));
        let reconfigs = production
            .iter()
            .filter_map(|i| i.as_marker())
            .filter(|m| tracker.on_marker(m).reconfig.is_some())
            .count();
        assert_eq!(reconfigs, 2, "enter + exit fire regardless of the path");
    }

    #[test]
    fn overhead_is_cheaper_for_simple_policies() {
        let path_plan = plan_for(ContextPolicy::LoopFuncSitePath);
        let simple_plan = plan_for(ContextPolicy::LoopFunc);
        let mut path_tracker = path_plan.tracker();
        let mut simple_tracker = simple_plan.tracker();
        for item in trace() {
            if let TraceItem::Marker(m) = item {
                path_tracker.on_marker(&m);
                simple_tracker.on_marker(&m);
            }
        }
        assert!(path_tracker.overhead_cycles() > simple_tracker.overhead_cycles());
    }
}
