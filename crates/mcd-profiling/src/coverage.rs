//! Training-versus-reference call-tree coverage (Table 3 of the paper).
//!
//! The profiling mechanism only ever builds call trees for training runs; the
//! reference-input trees here are constructed purely for comparison, exactly
//! as the paper's Table 3 does, to show how well the code paths seen during
//! training predict the paths taken in production.

use crate::call_tree::{CallTree, NodeKind};
use crate::candidates::LongRunningSet;
use mcd_sim::instruction::CallSiteId;
use std::collections::HashSet;

type Signature = Vec<(NodeKind, Option<CallSiteId>)>;

/// One row of Table 3 for a single benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Long-running nodes found with the training input.
    pub train_long_running: usize,
    /// Total call-tree nodes with the training input.
    pub train_total: usize,
    /// Long-running nodes found with the reference input.
    pub reference_long_running: usize,
    /// Total call-tree nodes with the reference input.
    pub reference_total: usize,
    /// Long-running nodes common to both trees (same path from the root).
    pub common_long_running: usize,
    /// Total nodes common to both trees.
    pub common_total: usize,
}

impl CoverageReport {
    /// Compares the training tree (and its long-running set) with the
    /// reference tree (and its long-running set).
    pub fn compare(
        train_tree: &CallTree,
        train_long: &LongRunningSet,
        reference_tree: &CallTree,
        reference_long: &LongRunningSet,
    ) -> Self {
        let train_all: HashSet<Signature> = train_tree
            .preorder()
            .into_iter()
            .map(|id| train_tree.path_signature(id))
            .collect();
        let train_lr: HashSet<Signature> = train_long
            .iter()
            .map(|id| train_tree.path_signature(id))
            .collect();
        let ref_all: HashSet<Signature> = reference_tree
            .preorder()
            .into_iter()
            .map(|id| reference_tree.path_signature(id))
            .collect();
        let ref_lr: HashSet<Signature> = reference_long
            .iter()
            .map(|id| reference_tree.path_signature(id))
            .collect();

        CoverageReport {
            train_long_running: train_lr.len(),
            train_total: train_all.len(),
            reference_long_running: ref_lr.len(),
            reference_total: ref_all.len(),
            common_long_running: train_lr.intersection(&ref_lr).count(),
            common_total: train_all.intersection(&ref_all).count(),
        }
    }

    /// Coverage of long-running nodes: common / reference (the first number of
    /// Table 3's *Coverage* column).
    pub fn long_running_coverage(&self) -> f64 {
        if self.reference_long_running == 0 {
            1.0
        } else {
            self.common_long_running as f64 / self.reference_long_running as f64
        }
    }

    /// Coverage of all nodes: common / reference (the second number of the
    /// *Coverage* column).
    pub fn total_coverage(&self) -> f64 {
        if self.reference_total == 0 {
            1.0
        } else {
            self.common_total as f64 / self.reference_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextPolicy;
    use mcd_workloads::generator::generate_trace;
    use mcd_workloads::programs;

    fn report_for(
        (program, inputs): (
            mcd_workloads::program::Program,
            mcd_workloads::input::InputPair,
        ),
    ) -> CoverageReport {
        let train_trace = generate_trace(&program, &inputs.training);
        let ref_trace = generate_trace(&program, &inputs.reference);
        let train_tree = CallTree::build(&train_trace, ContextPolicy::LoopFuncSitePath);
        let ref_tree = CallTree::build(&ref_trace, ContextPolicy::LoopFuncSitePath);
        let train_lr = LongRunningSet::identify(&train_tree);
        let ref_lr = LongRunningSet::identify(&ref_tree);
        CoverageReport::compare(&train_tree, &train_lr, &ref_tree, &ref_lr)
    }

    #[test]
    fn stable_benchmark_has_full_coverage() {
        let r = report_for(programs::adpcm::decode());
        assert!(r.total_coverage() > 0.99, "adpcm coverage {:?}", r);
        assert!(r.long_running_coverage() > 0.99);
        assert!(r.train_long_running >= 1);
    }

    #[test]
    fn mpeg2_decode_reference_has_extra_nodes() {
        let r = report_for(programs::mpeg2::decode());
        assert!(
            r.reference_total > r.train_total,
            "reference tree should have nodes training never saw: {:?}",
            r
        );
        assert!(r.total_coverage() < 1.0);
    }

    #[test]
    fn vpr_coverage_is_very_low() {
        let r = report_for(programs::vpr::vpr());
        assert!(
            r.total_coverage() < 0.5,
            "vpr training and reference should diverge strongly: {:?}",
            r
        );
    }

    #[test]
    fn coverage_fractions_are_in_unit_range() {
        for bench in [
            programs::gsm::decode(),
            programs::jpeg::compress(),
            programs::swim::swim(),
        ] {
            let r = report_for(bench);
            assert!(r.long_running_coverage() >= 0.0 && r.long_running_coverage() <= 1.0);
            assert!(r.total_coverage() >= 0.0 && r.total_coverage() <= 1.0);
            assert!(r.common_total <= r.train_total.min(r.reference_total));
        }
    }
}
