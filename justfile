# Task runner for the MCD DVFS reproduction.
#
# Install `just` (https://github.com/casey/just) or read the recipes as plain
# shell — each one is a single cargo invocation.

# Build every crate in release mode.
build:
    cargo build --release

# Run the full test suite (unit, integration, doc tests).
test:
    cargo test -q

# Run only the golden-metrics regression harness (also part of `just test`):
# per-scheme headline metrics on a fixed benchmark panel vs. checked-in values.
golden:
    cargo test --test golden

# Lint: clippy with warnings denied, plus formatting check.
lint:
    cargo clippy --all-targets -- -D warnings
    cargo fmt --check

# Format the whole workspace in place.
fmt:
    cargo fmt

# Run the tracked macro-benchmark harness: times trace generation, baseline
# simulation, streaming capture+analysis, a cold fig4 --quick evaluation, the
# batched slowdown sweep (one point vs. ten points in a single batch), the
# load-test stream under serial and batched submission, the same stream with
# disabled fault-injection hooks installed (their off-path must be free),
# and the shared-cache single-writer stage; each stage runs in a fresh child
# process (median of 3) and the report goes to BENCH_8.json. See README
# "Performance" for the schema and trajectory.
bench:
    cargo run --release --bin perf_report

# Compare a fresh bench run against the committed BENCH_8.json: fails on a
# >25% fig4-quick / sweep / load-batched regression, when the ten-point
# batched sweep costs 4x or more the one-point cost, when batched load-test
# submission is less than 4x serial throughput, when the serial, batched and
# fault-off metrics digests diverge, when the disabled fault hooks cost more
# than 15% over plain batched load, or when the shared-cache stage records a
# duplicate artifact write (the CI gates).
bench-check:
    cargo run --release --bin perf_report -- --check BENCH_8.json --out /tmp/bench-check.json

# Replay the full synthetic load-test stream: serial-vs-batched throughput
# with latency percentiles and a bit-exact metrics digest, admission control
# under queue-capacity and rate-limit pressure, N concurrent cold processes
# proving the shared cache's single-writer guarantee, and the chaos phase
# (seeded fault injection against the self-healing machinery).
loadtest:
    cargo run --release --bin loadtest

# The CI-sized load test (3 points per benchmark, same invariants).
loadtest-smoke:
    cargo run --release --bin loadtest -- --smoke

# Only the chaos phase: the CI-sized stream under a seeded fault plan
# (injected read/write errors, torn writes, lock stalls, worker panics),
# asserting exactly-one-terminal-per-job, bit-identical survivors, verified
# artifacts, and zero stranded debris. Override the seed to replay a failure:
# `just chaos 1234`.
chaos seed="42":
    cargo run --release --bin loadtest -- --chaos-only --smoke --fault-seed {{seed}}

# Run the micro-benchmarks (the criterion-style harness in crates/mcd-bench).
microbench:
    cargo bench

# Streaming-evaluation smoke test: three jobs on one Evaluator, asserting
# per-job event delivery before the batch completes (the CI step).
stream-smoke:
    cargo run --release --example streaming_eval

# Run the controller tournament: every registered scheme (paper schemes +
# controller zoo) across all three suite tiers through one batched Evaluator,
# reported as metric matrices plus per-tier and overall rankings.
tournament:
    cargo run --release --bin tournament -- --quick

# The full-suite tournament (all nineteen paper benchmarks + second tier).
tournament-full:
    cargo run --release --bin tournament

# Print artifact-cache entries, sizes, and accumulated hit/miss counters.
cache-stats:
    cargo run --release --bin cache_stats

# Delete the artifact cache (respects MCD_CACHE_DIR, defaults to .mcd-cache).
cache-clean:
    rm -rf "${MCD_CACHE_DIR:-.mcd-cache}"

# Regenerate every paper figure and table (quick six-benchmark subset).
figures:
    cargo run --release --bin table1_config
    cargo run --release --bin table2_windows
    cargo run --release --bin table3_coverage
    cargo run --release --bin table4_overhead
    cargo run --release --bin fig4_slowdown -- --quick
    cargo run --release --bin fig5_energy -- --quick
    cargo run --release --bin fig6_energy_delay -- --quick
    cargo run --release --bin fig7_summary -- --quick
    cargo run --release --bin fig8_9_context
    cargo run --release --bin fig10_11_sweep -- --quick
    cargo run --release --bin fig12_overhead -- --quick
    cargo run --release --bin fig13_server_suite -- --quick
    cargo run --release --bin mcd_baseline_penalty -- --quick
    cargo run --release --bin ablation_threshold

# Regenerate every figure over the full nineteen-benchmark suite (slow).
figures-full:
    cargo run --release --bin fig4_slowdown
    cargo run --release --bin fig5_energy
    cargo run --release --bin fig6_energy_delay
    cargo run --release --bin fig7_summary
    cargo run --release --bin fig10_11_sweep -- --full
    cargo run --release --bin fig12_overhead
    cargo run --release --bin fig13_server_suite
    cargo run --release --bin mcd_baseline_penalty
