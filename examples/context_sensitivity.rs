//! Context sensitivity: compare the six definitions of calling context
//! (L+F+C+P … F) on a benchmark whose training and reference inputs exercise
//! different code paths (mpeg2 decode), reproducing the effect behind
//! Figures 8 and 9 for a single benchmark.
//!
//! The six policies are six jobs on one [`Evaluator`], each restricted to the
//! profile scheme; the reference trace and baseline are computed once and
//! shared by all six.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example context_sensitivity
//! ```

use mcd_dvfs::error::{find_benchmark, run_main, McdError};
use mcd_dvfs::scheme::names;
use mcd_dvfs::service::{EvalJob, Evaluator};
use mcd_profiling::context::ContextPolicy;
use std::process::ExitCode;

fn run() -> Result<(), McdError> {
    let bench = find_benchmark("mpeg2 decode")?;

    let evaluator = Evaluator::builder().parallelism(2).build();
    let stream = evaluator.submit_all(
        ContextPolicy::ALL
            .iter()
            .map(|&policy| {
                EvalJob::new(bench.clone())
                    .with_policy(policy)
                    .with_schemes([names::PROFILE])
            })
            .collect(),
    );

    println!("context sensitivity on `{}`", bench.name);
    println!(
        "(the reference clip contains B-frames the training clip never decodes, so \
         path-tracking policies refuse to reconfigure on those unseen paths)"
    );
    println!();
    println!(
        "{:<10} {:>14} {:>16} {:>22} {:>14}",
        "policy", "slowdown", "energy savings", "energy-delay improv.", "reconfigs"
    );
    println!("{}", "-".repeat(80));

    for (policy, eval) in ContextPolicy::ALL.iter().zip(stream.collect()?) {
        let result = eval.require(names::PROFILE)?;
        println!(
            "{:<10} {:>13.1}% {:>15.1}% {:>21.1}% {:>14}",
            policy.abbreviation(),
            result.metrics.degradation_percent(),
            result.metrics.energy_savings_percent(),
            result.metrics.energy_delay_percent(),
            result.stats.reconfigurations,
        );
    }

    let memo = evaluator.memo_stats();
    println!();
    println!(
        "baseline memo: computed {} time(s), reused {} time(s)",
        memo.misses, memo.hits
    );
    println!(
        "The L+F and F rows reconfigure whenever a long-running static structure is \
         entered — even over paths unseen in training — which yields higher energy \
         savings (and slightly higher slowdown) than the path-tracking policies, \
         exactly the behaviour the paper reports for mpeg2 decode."
    );
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
