//! Context sensitivity: compare the six definitions of calling context
//! (L+F+C+P … F) on a benchmark whose training and reference inputs exercise
//! different code paths (mpeg2 decode), reproducing the effect behind
//! Figures 8 and 9 for a single benchmark.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example context_sensitivity
//! ```

use mcd_dvfs::error::{find_benchmark, run_main, McdError};
use mcd_dvfs::evaluation::{evaluate_scheme, run_trace_baseline, EvaluationConfig};
use mcd_dvfs::scheme::ProfileScheme;
use mcd_dvfs::DvfsScheme;
use mcd_profiling::context::ContextPolicy;
use mcd_sim::config::MachineConfig;
use mcd_workloads::generator::generate_trace;
use std::process::ExitCode;

fn run() -> Result<(), McdError> {
    let bench = find_benchmark("mpeg2 decode")?;
    let machine = MachineConfig::default();
    let reference = generate_trace(&bench.program, &bench.inputs.reference);
    let baseline = run_trace_baseline(&reference, &machine);

    println!("context sensitivity on `{}`", bench.name);
    println!(
        "(the reference clip contains B-frames the training clip never decodes, so \
         path-tracking policies refuse to reconfigure on those unseen paths)"
    );
    println!();
    println!(
        "{:<10} {:>14} {:>16} {:>22} {:>14}",
        "policy", "slowdown", "energy savings", "energy-delay improv.", "reconfigs"
    );
    println!("{}", "-".repeat(80));

    for policy in ContextPolicy::ALL {
        let mut scheme = ProfileScheme::default();
        scheme.configure(&EvaluationConfig::default().with_policy(policy))?;
        let result = evaluate_scheme(&bench, &machine, &reference, &scheme, &baseline)?;
        println!(
            "{:<10} {:>13.1}% {:>15.1}% {:>21.1}% {:>14}",
            policy.abbreviation(),
            result.metrics.degradation_percent(),
            result.metrics.energy_savings_percent(),
            result.metrics.energy_delay_percent(),
            result.stats.reconfigurations,
        );
    }

    println!();
    println!(
        "The L+F and F rows reconfigure whenever a long-running static structure is \
         entered — even over paths unseen in training — which yields higher energy \
         savings (and slightly higher slowdown) than the path-tracking policies, \
         exactly the behaviour the paper reports for mpeg2 decode."
    );
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
