//! Profile a custom workload: build your own program model with the
//! `ProgramBuilder`, profile it, and inspect the frequencies the analysis
//! chooses for each phase.
//!
//! The program below alternates an FP-heavy filter phase with a branchy
//! integer compression phase — the classic case where a Multiple Clock Domain
//! processor can slow whichever domain the current phase does not need.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example profile_workload
//! ```

use mcd_dvfs::profile::{train, TrainingConfig};
use mcd_sim::config::MachineConfig;
use mcd_sim::domain::Domain;
use mcd_workloads::input::InputSet;
use mcd_workloads::mix::InstructionMix;
use mcd_workloads::program::{ProgramBuilder, TripCount};

fn main() {
    // A two-phase pipeline: filter() is floating-point, compress() is integer.
    let mut builder = ProgramBuilder::new("custom_pipeline");
    let filter = builder.subroutine("filter", |s| {
        s.repeat("filter_rows", TripCount::Fixed(30), |l| {
            l.block(500, InstructionMix::fp_kernel());
        });
    });
    let compress = builder.subroutine("compress", |s| {
        s.repeat("symbol_loop", TripCount::Fixed(25), |l| {
            l.block(550, InstructionMix::branchy_int());
        });
    });
    builder.subroutine("main", |s| {
        s.repeat(
            "frame_loop",
            TripCount::Scaled {
                base: 4,
                reference_factor: 2.0,
            },
            |l| {
                l.call(filter);
                l.call(compress);
            },
        );
    });
    let program = builder.build("main");

    // Profile it on a small input.
    let training = InputSet::training(120_000);
    let machine = MachineConfig::default();
    let plan = train(&program, &training, &machine, &TrainingConfig::default());

    println!("custom workload `{}`", program.name);
    println!(
        "  subroutines: {}, loops: {}, call sites: {}",
        program.subroutine_count(),
        program.loop_count(),
        program.call_site_count()
    );
    println!(
        "  long-running nodes found: {}",
        plan.instrumentation.long_running().len()
    );
    println!();
    println!("chosen per-phase frequencies (MHz):");
    println!(
        "{:<32} {:>10} {:>10} {:>10} {:>10}",
        "reconfiguration point", "front-end", "integer", "fp", "memory"
    );
    let mut rows: Vec<String> = plan
        .table
        .iter()
        .map(|(key, setting)| {
            format!(
                "{:<32} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                format!("{key:?}"),
                setting.get(Domain::FrontEnd).as_mhz(),
                setting.get(Domain::Integer).as_mhz(),
                setting.get(Domain::FloatingPoint).as_mhz(),
                setting.get(Domain::Memory).as_mhz(),
            )
        })
        .collect();
    rows.sort();
    for row in rows {
        println!("{row}");
    }
    println!();
    println!(
        "The FP-heavy filter phase keeps the floating-point domain fast and lets the \
         integer domain idle slowly; the compression phase does the opposite."
    );
}
