//! Quickstart: train the profile-driven DVFS mechanism on one benchmark's
//! training input and evaluate it on the reference input.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mcd_dvfs::error::{find_benchmark, run_main, McdError};
use mcd_dvfs::evaluation::relative;
use mcd_dvfs::profile::{train, TrainingConfig};
use mcd_sim::config::MachineConfig;
use mcd_sim::domain::Domain;
use mcd_sim::simulator::{NullHooks, Simulator};
use mcd_workloads::generator::generate_trace;
use std::process::ExitCode;

fn run() -> Result<(), McdError> {
    // 1. Pick a benchmark from the suite (the MediaBench ADPCM decoder).
    let bench = find_benchmark("adpcm decode")?;
    let machine = MachineConfig::default();

    // 2. Train on the small training input: profile, build the call tree, pick
    //    long-running nodes, shake their dependence DAGs and choose per-node
    //    frequencies for every clock domain.
    let plan = train(
        &bench.program,
        &bench.inputs.training,
        &machine,
        &TrainingConfig::default(),
    );
    println!("trained `{}`:", bench.name);
    println!(
        "  reconfiguration points: {}",
        plan.instrumentation.static_reconfiguration_points()
    );
    println!("  frequency-table entries: {}", plan.table.len());
    for (key, setting) in plan.table.iter() {
        println!(
            "  {:?}: front-end {:.0} MHz, integer {:.0} MHz, FP {:.0} MHz, memory {:.0} MHz",
            key,
            setting.get(Domain::FrontEnd).as_mhz(),
            setting.get(Domain::Integer).as_mhz(),
            setting.get(Domain::FloatingPoint).as_mhz(),
            setting.get(Domain::Memory).as_mhz(),
        );
    }

    // 3. Run the (larger) reference input twice: once at full speed (the MCD
    //    baseline) and once under profile-driven reconfiguration.
    let reference = generate_trace(&bench.program, &bench.inputs.reference);
    let simulator = Simulator::new(machine);
    let baseline = simulator
        .run(reference.iter().copied(), &mut NullHooks, false)
        .stats;
    let mut hooks = plan.hooks();
    let controlled = simulator
        .run(reference.iter().copied(), &mut hooks, false)
        .stats;

    // 4. Report the paper's metrics.
    let metrics = relative(&controlled, &baseline);
    println!();
    println!("reference run ({} instructions):", baseline.instructions);
    println!(
        "  performance degradation:  {:.1}%",
        metrics.degradation_percent()
    );
    println!(
        "  energy savings:           {:.1}%",
        metrics.energy_savings_percent()
    );
    println!(
        "  energy-delay improvement: {:.1}%",
        metrics.energy_delay_percent()
    );
    println!(
        "  register writes:          {}",
        controlled.reconfigurations
    );
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
