//! Streaming evaluation demo (and CI smoke test): submit three jobs to one
//! [`Evaluator`] and verify the results *stream* — every job's per-scheme
//! events arrive in lifecycle order, and scheme results are delivered
//! incrementally instead of all at once when the batch ends.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_eval
//! ```
//!
//! Exits non-zero if any streaming property is violated, so CI can run it as
//! an assertion.

use mcd_dvfs::error::{find_benchmark, run_main, McdError};
use mcd_dvfs::service::{EvalEvent, EvalJob, Evaluator, JobId};
use std::collections::HashMap;
use std::process::ExitCode;

fn ensure(condition: bool, what: &str) -> Result<(), McdError> {
    if condition {
        Ok(())
    } else {
        Err(McdError::Internal(format!("streaming violation: {what}")))
    }
}

fn run() -> Result<(), McdError> {
    let names = ["adpcm decode", "adpcm encode", "gsm decode"];
    let evaluator = Evaluator::builder().parallelism(2).build();
    let jobs = names
        .iter()
        .map(|&name| Ok(EvalJob::new(find_benchmark(name)?)))
        .collect::<Result<Vec<_>, McdError>>()?;
    let stream = evaluator.submit_all(jobs);
    let job_ids = stream.jobs().to_vec();

    // Drain the stream, logging every event as it arrives.
    let mut events: Vec<EvalEvent> = Vec::new();
    for event in stream {
        match &event {
            EvalEvent::JobQueued {
                job,
                benchmark,
                depth,
            } => {
                println!("{job}: queued        {benchmark} (depth {depth})");
            }
            EvalEvent::JobRejected { job, reason, .. } => {
                println!("{job}: REJECTED      {reason}");
            }
            EvalEvent::JobStarted {
                job, queued_for, ..
            } => {
                println!("{job}: started       after {queued_for:?} queued");
            }
            EvalEvent::BaselineReady { job, memo_hit, .. } => {
                println!("{job}: baseline      (memo hit: {memo_hit})");
            }
            EvalEvent::SchemeFinished { job, outcome, .. } => {
                println!(
                    "{job}: {:<12}  energy savings {:>5.1}%",
                    outcome.name,
                    outcome.result.metrics.energy_savings_percent()
                );
            }
            EvalEvent::JobCompleted { job, evaluation } => {
                println!("{job}: completed     {} schemes", evaluation.schemes.len());
            }
            EvalEvent::JobFailed { job, error, .. } => {
                println!("{job}: FAILED        {error}");
            }
        }
        events.push(event);
    }

    // Every job must walk the full lifecycle, in order.
    let mut lifecycle: HashMap<JobId, Vec<u8>> = HashMap::new();
    for event in &events {
        let stage = match event {
            EvalEvent::JobQueued { .. } => 0,
            EvalEvent::JobStarted { .. } => 1,
            EvalEvent::BaselineReady { .. } => 2,
            EvalEvent::SchemeFinished { .. } => 3,
            EvalEvent::JobCompleted { .. }
            | EvalEvent::JobFailed { .. }
            | EvalEvent::JobRejected { .. } => 4,
        };
        lifecycle.entry(event.job()).or_default().push(stage);
    }
    for &job in &job_ids {
        let stages = lifecycle
            .get(&job)
            .ok_or_else(|| McdError::Internal(format!("{job} emitted no events")))?;
        ensure(
            stages.first() == Some(&0),
            "lifecycle starts with JobQueued",
        )?;
        ensure(stages.get(1) == Some(&1), "JobStarted follows JobQueued")?;
        ensure(
            stages.get(2) == Some(&2),
            "BaselineReady follows JobStarted",
        )?;
        ensure(
            stages.last() == Some(&4),
            "lifecycle ends with a terminal event",
        )?;
        let schemes = stages.iter().filter(|&&s| s == 3).count();
        ensure(schemes == 3, "one SchemeFinished per standard scheme")?;
        ensure(
            stages.windows(2).all(|w| w[0] <= w[1]),
            "per-job events are ordered",
        )?;
    }

    // The batch must stream: per-job results arrive before the batch is done.
    // Scheme results from more than one job must precede the last terminal
    // event, and the first completed job must not be the last event.
    let last_terminal = events
        .iter()
        .rposition(EvalEvent::is_terminal)
        .expect("terminal events exist");
    let jobs_streaming_early: std::collections::HashSet<JobId> = events[..last_terminal]
        .iter()
        .filter(|e| matches!(e, EvalEvent::SchemeFinished { .. }))
        .map(EvalEvent::job)
        .collect();
    ensure(
        jobs_streaming_early.len() >= 2,
        "scheme results of at least two jobs arrive before the batch completes",
    )?;
    let first_terminal = events
        .iter()
        .position(EvalEvent::is_terminal)
        .expect("terminal events exist");
    ensure(
        first_terminal < last_terminal,
        "the first job finishes while the batch is still running",
    )?;
    ensure(
        events
            .iter()
            .all(|e| !matches!(e, EvalEvent::JobFailed { .. })),
        "no job failed",
    )?;

    let memo = evaluator.memo_stats();
    println!();
    println!(
        "ok: {} events from {} jobs streamed per-job; baselines computed {}, reused {}",
        events.len(),
        job_ids.len(),
        memo.misses,
        memo.hits
    );
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
