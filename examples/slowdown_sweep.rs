//! Slowdown sweep: vary the tolerable-slowdown parameter d of the off-line
//! analysis and the profile-driven mechanism on a single benchmark, printing
//! the (achieved slowdown, energy savings, energy-delay improvement) series of
//! Figures 10 and 11.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example slowdown_sweep [benchmark-name]
//! ```

use mcd_dvfs::error::{find_benchmark, run_main, McdError};
use mcd_dvfs::evaluation::{evaluate_benchmark, EvaluationConfig};
use mcd_dvfs::scheme::names;
use std::process::ExitCode;

fn run() -> Result<(), McdError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "jpeg compress".to_string());
    let bench = find_benchmark(&name)?;

    println!("slowdown sweep on `{}`", bench.name);
    println!();
    println!(
        "{:>6}  {:>24}  {:>26}",
        "d", "off-line (slow/save/ED)", "profile L+F (slow/save/ED)"
    );
    println!("{}", "-".repeat(62));

    for d in [0.02, 0.04, 0.07, 0.10, 0.14] {
        let config = EvaluationConfig::default().with_slowdown(d);
        let eval = evaluate_benchmark(&bench, &config)?;
        let offline = eval.metrics(names::OFFLINE)?;
        let profile = eval.metrics(names::PROFILE)?;
        println!(
            "{:>5.0}%  {:>7.1}%/{:>5.1}%/{:>5.1}%  {:>8.1}%/{:>5.1}%/{:>5.1}%",
            d * 100.0,
            offline.degradation_percent(),
            offline.energy_savings_percent(),
            offline.energy_delay_percent(),
            profile.degradation_percent(),
            profile.energy_savings_percent(),
            profile.energy_delay_percent(),
        );
    }

    println!();
    println!(
        "Energy savings and energy-delay improvement grow roughly linearly with the \
         slowdown target for both off-line and profile-based reconfiguration; the \
         profile-based series tracks the oracle closely."
    );
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
