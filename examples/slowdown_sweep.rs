//! Slowdown sweep: vary the tolerable-slowdown parameter d of the off-line
//! analysis and the profile-driven mechanism on a single benchmark, printing
//! the (achieved slowdown, energy savings, energy-delay improvement) series of
//! Figures 10 and 11.
//!
//! One [`Evaluator`] serves every sweep point: the benchmark's reference
//! trace and full-speed baseline are computed for the first job and reused by
//! the other four (watch the memo line the example prints).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example slowdown_sweep [benchmark-name]
//! ```

use mcd_dvfs::error::{find_benchmark, run_main, McdError};
use mcd_dvfs::scheme::names;
use mcd_dvfs::service::{EvalJob, Evaluator};
use std::process::ExitCode;

fn run() -> Result<(), McdError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "jpeg compress".to_string());
    let bench = find_benchmark(&name)?;
    let targets = [0.02, 0.04, 0.07, 0.10, 0.14];

    // Build the service once, then submit one job per sweep point. The jobs
    // only run the two schemes this table reads.
    let evaluator = Evaluator::builder().parallelism(2).build();
    let stream = evaluator.submit_all(
        targets
            .iter()
            .map(|&d| {
                EvalJob::new(bench.clone())
                    .with_slowdown(d)
                    .with_schemes([names::OFFLINE, names::PROFILE])
            })
            .collect(),
    );

    println!("slowdown sweep on `{}`", bench.name);
    println!();
    println!(
        "{:>6}  {:>24}  {:>26}",
        "d", "off-line (slow/save/ED)", "profile L+F (slow/save/ED)"
    );
    println!("{}", "-".repeat(62));

    for (&d, eval) in targets.iter().zip(stream.collect()?) {
        let offline = eval.metrics(names::OFFLINE)?;
        let profile = eval.metrics(names::PROFILE)?;
        println!(
            "{:>5.0}%  {:>7.1}%/{:>5.1}%/{:>5.1}%  {:>8.1}%/{:>5.1}%/{:>5.1}%",
            d * 100.0,
            offline.degradation_percent(),
            offline.energy_savings_percent(),
            offline.energy_delay_percent(),
            profile.degradation_percent(),
            profile.energy_savings_percent(),
            profile.energy_delay_percent(),
        );
    }

    let memo = evaluator.memo_stats();
    println!();
    println!(
        "baseline memo: computed {} time(s), reused {} time(s) across {} jobs",
        memo.misses,
        memo.hits,
        memo.lookups()
    );
    println!(
        "Energy savings and energy-delay improvement grow roughly linearly with the \
         slowdown target for both off-line and profile-based reconfiguration; the \
         profile-based series tracks the oracle closely."
    );
    Ok(())
}

fn main() -> ExitCode {
    run_main(run)
}
